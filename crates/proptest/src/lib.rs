//! A tiny, dependency-free stand-in for the [`proptest`][upstream] crate.
//!
//! This workspace builds in fully offline environments, so it cannot pull
//! the real `proptest` from crates.io. This crate re-implements the subset
//! of the proptest API the workspace's property tests actually use:
//!
//! * the [`proptest!`] macro with `#![proptest_config(..)]` and
//!   `arg in strategy` bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`];
//! * range strategies (`0usize..8`, `-1.0f32..1.0`, `1u32..=64`),
//!   [`any`], tuple strategies, [`collection::vec`], [`sample::select`],
//!   and [`Just`];
//! * [`ProptestConfig::with_cases`].
//!
//! Unlike upstream there is no shrinking: a failing case reports the exact
//! generated inputs (which are reproducible — generation is seeded from the
//! test name), which is enough to pin down and replay a failure.
//!
//! [upstream]: https://docs.rs/proptest

#![forbid(unsafe_code)]

use core::fmt::Debug;
use core::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// The deterministic generator driving test-case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from raw state.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Seeds deterministically from a test name (and the optional
    /// `PROPTEST_SEED` environment variable, for exploring other sequences).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = extra.trim().parse::<u64>() {
                h ^= v.rotate_left(17);
            }
        }
        Self::from_seed(h)
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any value.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        // Finite, well-spread values; upstream's NaN/inf corners are not
        // needed by this workspace's tests.
        ((rng.unit_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.unit_f64() - 0.5) * 2.0e12
    }
}

/// Strategy for an unconstrained value of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

/// Size specifications accepted by [`collection::vec`].
pub trait SizeRange {
    /// Draws a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        Strategy::generate(self, rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};
    use core::fmt::Debug;

    /// Strategy for `Vec<T>` with element strategy `S` and a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `vec(element, size)` — a vector whose length is drawn from `size` and
    /// whose elements come from `element`.
    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};
    use core::fmt::Debug;

    /// Strategy choosing uniformly among fixed options.
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone + Debug> {
        options: Vec<T>,
    }

    impl<T: Clone + Debug> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }

    /// `select(options)` — one of the given values, uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }
}

// ---------------------------------------------------------------------------
// Config and failure plumbing
// ---------------------------------------------------------------------------

/// Runner configuration (only `cases` is interpreted).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A test-case failure produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        Self { message }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Everything a property test file needs, mirroring upstream's prelude.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, collection, prop_assert, prop_assert_eq, prop_assert_ne, proptest, sample, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )+
                    let mut inputs = String::new();
                    $(
                        inputs.push_str("  ");
                        inputs.push_str(stringify!($arg));
                        inputs.push_str(" = ");
                        inputs.push_str(&format!("{:?}", &$arg));
                        inputs.push('\n');
                    )+
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "property '{}' failed at case {case}: {e}\ninputs:\n{inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property test, reporting generated inputs on
/// failure instead of panicking on the spot.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let w = (1u32..=64).generate(&mut rng);
            assert!((1..=64).contains(&w));
            let f = (-2.0f32..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_strategies() {
        let mut rng = TestRng::from_seed(2);
        for _ in 0..100 {
            let v = collection::vec(0u8..=4, 1..64).generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 64);
            assert!(v.iter().all(|&x| x <= 4));
            let s = sample::select(vec![256usize, 512, 1024]).generate(&mut rng);
            assert!([256, 512, 1024].contains(&s));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::from_seed(3);
        let (a, b, c) = (0usize..8, any::<u64>(), 1u32..=64).generate(&mut rng);
        assert!(a < 8);
        let _ = b;
        assert!((1..=64).contains(&c));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            xs in collection::vec(-10.0f32..10.0, 0..50),
            k in any::<u32>()
        ) {
            prop_assert!(xs.len() < 50);
            prop_assert_eq!(k, k);
            prop_assert_ne!(k as u64 + 1, u64::from(k));
            for x in &xs {
                prop_assert!((-10.0..10.0).contains(x), "out of range: {x}");
            }
        }
    }
}
