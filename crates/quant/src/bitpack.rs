//! Bit-level packing for trimmable payload parts.
//!
//! Each part of a trimmable encoding stores one fixed-width field per
//! gradient coordinate, bit-packed with no padding: coordinate `i` of a
//! `w`-bit part occupies bits `[i·w, (i+1)·w)`. Bits are addressed LSB-first
//! within each byte, so the layouts produced here are identical on every
//! platform and can be mem-mapped straight into packet payloads.

/// A growable, bit-addressed buffer.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BitBuf {
    bytes: Vec<u8>,
    /// Number of valid bits.
    len: usize,
}

impl BitBuf {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with capacity for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            len: 0,
        }
    }

    /// Creates a zero-filled buffer of exactly `bits` bits.
    #[must_use]
    pub fn zeroed(bits: usize) -> Self {
        Self {
            bytes: vec![0; bits.div_ceil(8)],
            len: bits,
        }
    }

    /// Reconstructs a buffer from raw bytes and a bit length (wire → memory).
    ///
    /// The byte vector is normalized to exactly `len.div_ceil(8)` bytes with
    /// the slack bits of the final byte cleared. Without this, a buffer built
    /// from an oversized vector (or one whose final byte carried stray slack
    /// bits) would violate the append invariant: `push_bits`/`extend` write
    /// at byte `len / 8`, so trailing surplus bytes would shadow the appended
    /// bits and dirty slack would OR into the next field.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too short to hold `len` bits.
    #[must_use]
    pub fn from_bytes(mut bytes: Vec<u8>, len: usize) -> Self {
        assert!(
            bytes.len() * 8 >= len,
            "{} bytes cannot hold {len} bits",
            bytes.len()
        );
        bytes.truncate(len.div_ceil(8));
        if !len.is_multiple_of(8) {
            if let Some(last) = bytes.last_mut() {
                *last &= (1u8 << (len % 8)) - 1;
            }
        }
        Self { bytes, len }
    }

    /// Number of valid bits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds zero bits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The underlying bytes (the final byte may be partially valid).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Appends the low `width` bits of `value` (LSB first). `width <= 64`.
    ///
    /// # Panics
    ///
    /// Panics if `width > 64` or if `value` has bits set above `width`.
    pub fn push_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} wider than {width} bits"
        );
        let mut remaining = width;
        let mut v = value;
        while remaining > 0 {
            let bit_in_byte = self.len % 8;
            if bit_in_byte == 0 {
                self.bytes.push(0);
            }
            let take = (8 - bit_in_byte as u32).min(remaining);
            let byte = self.bytes.last_mut().expect("just ensured non-empty");
            *byte |= ((v & ((1u64 << take) - 1)) as u8) << bit_in_byte;
            v >>= take;
            self.len += take as usize;
            remaining -= take;
        }
    }

    /// Appends a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        self.push_bits(u64::from(bit), 1);
    }

    /// Reads `width` bits starting at bit offset `offset`. `width <= 64`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range reads.
    #[must_use]
    pub fn get_bits(&self, offset: usize, width: u32) -> u64 {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            offset + width as usize <= self.len,
            "read [{offset}, {}) out of range (len {})",
            offset + width as usize,
            self.len
        );
        let mut out: u64 = 0;
        let mut got: u32 = 0;
        let mut pos = offset;
        while got < width {
            let byte = self.bytes[pos / 8];
            let bit_in_byte = pos % 8;
            let take = (8 - bit_in_byte as u32).min(width - got);
            let chunk = (u64::from(byte) >> bit_in_byte) & ((1u64 << take) - 1);
            out |= chunk << got;
            got += take;
            pos += take as usize;
        }
        out
    }

    /// Reads a single bit.
    #[must_use]
    pub fn get_bit(&self, offset: usize) -> bool {
        self.get_bits(offset, 1) != 0
    }

    /// Overwrites `width` bits at bit offset `offset` (must already be valid).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range writes or oversized values.
    pub fn set_bits(&mut self, offset: usize, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} wider than {width} bits"
        );
        assert!(
            offset + width as usize <= self.len,
            "write [{offset}, {}) out of range (len {})",
            offset + width as usize,
            self.len
        );
        let mut remaining = width;
        let mut v = value;
        let mut pos = offset;
        while remaining > 0 {
            let bit_in_byte = pos % 8;
            let take = (8 - bit_in_byte as u32).min(remaining);
            let mask = (((1u64 << take) - 1) as u8) << bit_in_byte;
            let byte = &mut self.bytes[pos / 8];
            *byte = (*byte & !mask) | ((((v & ((1u64 << take) - 1)) as u8) << bit_in_byte) & mask);
            v >>= take;
            remaining -= take;
            pos += take as usize;
        }
    }

    /// Copies the first `bits` bits into a new buffer (a "trim" at bit level).
    ///
    /// # Panics
    ///
    /// Panics if `bits > self.len()`.
    #[must_use]
    pub fn prefix(&self, bits: usize) -> BitBuf {
        assert!(
            bits <= self.len,
            "prefix {bits} exceeds length {}",
            self.len
        );
        let mut bytes = self.bytes[..bits.div_ceil(8)].to_vec();
        // Zero the slack bits in the final byte so equality is structural.
        if !bits.is_multiple_of(8) {
            if let Some(last) = bytes.last_mut() {
                *last &= (1u8 << (bits % 8)) - 1;
            }
        }
        Self { bytes, len: bits }
    }

    /// Copies bits `[offset, offset + len)` into a new buffer starting at
    /// bit 0 (used to cut per-packet coordinate ranges out of a row part).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    #[must_use]
    pub fn slice(&self, offset: usize, len: usize) -> BitBuf {
        assert!(
            offset + len <= self.len,
            "slice [{offset}, {}) out of range (len {})",
            offset + len,
            self.len
        );
        let mut out = BitBuf::with_capacity(len);
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let take = (end - pos).min(64);
            out.push_bits(self.get_bits(pos, take as u32), take as u32);
            pos += take;
        }
        out
    }

    /// Copies all bits of `src` into this buffer starting at bit `offset`
    /// (the destination bits must already exist).
    ///
    /// # Panics
    ///
    /// Panics if `offset + src.len()` exceeds this buffer's length.
    pub fn write_bits_from(&mut self, offset: usize, src: &BitBuf) {
        assert!(
            offset + src.len() <= self.len,
            "write [{offset}, {}) out of range (len {})",
            offset + src.len(),
            self.len
        );
        let mut pos = 0;
        while pos < src.len() {
            let take = (src.len() - pos).min(64);
            self.set_bits(offset + pos, src.get_bits(pos, take as u32), take as u32);
            pos += take;
        }
    }

    /// Copies bits `[offset, offset + len)` into `dst` without allocating.
    ///
    /// `dst` must be exactly `len.div_ceil(8)` bytes; it receives the same
    /// bytes `self.slice(offset, len).as_bytes()` would produce (LSB-first,
    /// slack bits of the final byte zeroed), which is what packet sections
    /// carry on the wire.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer or `dst` has the wrong size.
    pub fn copy_bits_to(&self, offset: usize, len: usize, dst: &mut [u8]) {
        assert!(
            offset + len <= self.len,
            "copy [{offset}, {}) out of range (len {})",
            offset + len,
            self.len
        );
        assert_eq!(
            dst.len(),
            len.div_ceil(8),
            "destination must be exactly {} bytes for {len} bits",
            len.div_ceil(8)
        );
        if len == 0 {
            return;
        }
        let start_byte = offset / 8;
        let shift = offset % 8;
        if shift == 0 {
            dst.copy_from_slice(&self.bytes[start_byte..start_byte + dst.len()]);
        } else {
            for (i, d) in dst.iter_mut().enumerate() {
                let lo = self.bytes[start_byte + i] >> shift;
                let hi = self
                    .bytes
                    .get(start_byte + i + 1)
                    .map_or(0, |&b| b << (8 - shift));
                *d = lo | hi;
            }
        }
        let slack = len % 8;
        if slack != 0 {
            if let Some(last) = dst.last_mut() {
                *last &= (1u8 << slack) - 1;
            }
        }
    }

    /// Overwrites `len` bits at bit `offset` from packed source bytes
    /// (bit `i` of the range comes from bit `i % 8` of `src[i / 8]`),
    /// without allocating — the inverse of [`copy_bits_to`](Self::copy_bits_to)
    /// and the zero-copy form of [`write_bits_from`](Self::write_bits_from).
    ///
    /// # Panics
    ///
    /// Panics if the destination range exceeds the buffer or `src` is too
    /// short to hold `len` bits.
    pub fn write_bits_from_bytes(&mut self, offset: usize, src: &[u8], len: usize) {
        assert!(
            offset + len <= self.len,
            "write [{offset}, {}) out of range (len {})",
            offset + len,
            self.len
        );
        assert!(
            src.len() * 8 >= len,
            "{} source bytes cannot hold {len} bits",
            src.len()
        );
        if len == 0 {
            return;
        }
        if offset.is_multiple_of(8) {
            let dst_byte = offset / 8;
            let full = len / 8;
            self.bytes[dst_byte..dst_byte + full].copy_from_slice(&src[..full]);
            let rem = len % 8;
            if rem > 0 {
                let v = u64::from(src[full]) & ((1u64 << rem) - 1);
                self.set_bits(offset + full * 8, v, rem as u32);
            }
            return;
        }
        let mut pos = 0;
        while pos < len {
            let take = (len - pos).min(64);
            let v = read_bits_from_bytes(src, pos, take as u32);
            self.set_bits(offset + pos, v, take as u32);
            pos += take;
        }
    }

    /// Appends all bits of `other`.
    pub fn extend(&mut self, other: &BitBuf) {
        // Fast path: byte-aligned destination.
        if self.len.is_multiple_of(8) {
            let full_bytes = other.len / 8;
            self.bytes.extend_from_slice(&other.bytes[..full_bytes]);
            self.len += full_bytes * 8;
            let rem = other.len % 8;
            if rem > 0 {
                self.push_bits(
                    u64::from(other.bytes[full_bytes]) & ((1 << rem) - 1),
                    rem as u32,
                );
            }
            return;
        }
        let mut off = 0;
        while off < other.len {
            let take = (other.len - off).min(64);
            self.push_bits(other.get_bits(off, take as u32), take as u32);
            off += take;
        }
    }
}

/// Reads `width <= 64` bits starting at bit `offset` of LSB-first packed
/// bytes (same addressing as [`BitBuf::get_bits`], but over a raw slice).
fn read_bits_from_bytes(src: &[u8], offset: usize, width: u32) -> u64 {
    let mut out: u64 = 0;
    let mut got: u32 = 0;
    let mut pos = offset;
    while got < width {
        let byte = src[pos / 8];
        let bit_in_byte = pos % 8;
        let take = (8 - bit_in_byte as u32).min(width - got);
        let chunk = (u64::from(byte) >> bit_in_byte) & ((1u64 << take) - 1);
        out |= chunk << got;
        got += take;
        pos += take as usize;
    }
    out
}

/// A word-at-a-time bitstream writer producing the same LSB-first layout as
/// repeated [`BitBuf::push_bits`] calls, but buffering into a `u64`
/// accumulator so the common case is one shift/or per field and one 8-byte
/// store per 64 bits — instead of per-byte read-modify-write loops.
///
/// Invariants: `fill < 64`, and all accumulator bits at or above `fill` are
/// zero (so flushing never needs masking).
#[derive(Debug, Default)]
pub struct BitPacker {
    bytes: Vec<u8>,
    acc: u64,
    fill: u32,
}

impl BitPacker {
    /// Creates an empty packer with capacity for `bits` bits.
    #[must_use]
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(bits.div_ceil(8)),
            acc: 0,
            fill: 0,
        }
    }

    /// Number of bits written so far.
    #[must_use]
    pub fn bit_len(&self) -> usize {
        self.bytes.len() * 8 + self.fill as usize
    }

    /// Appends the low `width` bits of `value` (LSB first). `width <= 64`,
    /// and `value` must not have bits set at or above `width` — checked only
    /// in debug builds, since every call site passes masked fields.
    #[inline]
    pub fn push(&mut self, value: u64, width: u32) {
        debug_assert!(width <= 64, "width {width} > 64");
        debug_assert!(
            width == 64 || value >> width == 0,
            "value {value:#x} wider than {width} bits"
        );
        self.acc |= value << self.fill;
        let new_fill = self.fill + width;
        if new_fill >= 64 {
            self.bytes.extend_from_slice(&self.acc.to_le_bytes());
            let consumed = 64 - self.fill;
            // `value >> 64` is UB-shaped; it only arises when the accumulator
            // was empty and the full value already landed in `acc`.
            self.acc = if consumed >= 64 { 0 } else { value >> consumed };
            self.fill = new_fill - 64;
        } else {
            self.fill = new_fill;
        }
    }

    /// Finalizes into a [`BitBuf`], flushing the partial accumulator word.
    #[must_use]
    pub fn finish(mut self) -> BitBuf {
        let len = self.bit_len();
        let tail_bytes = (self.fill as usize).div_ceil(8);
        self.bytes
            .extend_from_slice(&self.acc.to_le_bytes()[..tail_bytes]);
        BitBuf {
            bytes: self.bytes,
            len,
        }
    }
}

/// Packs the sign bit of every value (1 = negative) into a 1-bit-per-entry
/// buffer, gathering 64 signs into a `u64` word at a time via
/// `f32::to_bits() >> 31` instead of one `push_bits` call per coordinate.
// trimlint: hot-path -- sign-plane extraction for every encode scheme
#[must_use]
pub fn pack_signs(values: &[f32]) -> BitBuf {
    // trimlint: allow(hot-path-alloc) -- one buffer allocation per row part, amortized
    let mut out = BitPacker::with_capacity(values.len());
    let mut chunks = values.chunks_exact(64);
    for chunk in chunks.by_ref() {
        let mut word = 0u64;
        for (j, v) in chunk.iter().enumerate() {
            word |= u64::from(v.to_bits() >> 31) << j;
        }
        out.push(word, 64);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut word = 0u64;
        for (j, v) in rem.iter().enumerate() {
            word |= u64::from(v.to_bits() >> 31) << j;
        }
        out.push(word, rem.len() as u32);
    }
    out.finish()
}

/// A fixed-size, bit-addressed presence mask (one bit per coordinate).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    buf: BitBuf,
}

impl BitMask {
    /// Creates a mask of `n` entries, all absent (`false`).
    #[must_use]
    pub fn absent(n: usize) -> Self {
        Self {
            buf: BitBuf::zeroed(n),
        }
    }

    /// Creates a mask of `n` entries, all present (`true`).
    #[must_use]
    pub fn present(n: usize) -> Self {
        let mut m = Self::absent(n);
        for i in 0..n {
            m.set(i, true);
        }
        m
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the mask has zero entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Returns entry `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        self.buf.get_bit(i)
    }

    /// Sets entry `i`.
    pub fn set(&mut self, i: usize, present: bool) {
        self.buf.set_bits(i, u64::from(present), 1);
    }

    /// Marks the half-open range `[start, end)` as `present`.
    pub fn set_range(&mut self, start: usize, end: usize, present: bool) {
        for i in start..end {
            self.set(i, present);
        }
    }

    /// Number of present entries.
    #[must_use]
    pub fn count_present(&self) -> usize {
        (0..self.len()).filter(|&i| self.get(i)).count()
    }
}

/// Packs one `width`-bit field per element of `values` into a fresh buffer.
///
/// # Panics
///
/// Panics if any value exceeds `width` bits.
#[must_use]
pub fn pack_fixed(values: &[u64], width: u32) -> BitBuf {
    let mut buf = BitBuf::with_capacity(values.len() * width as usize);
    for &v in values {
        buf.push_bits(v, width);
    }
    buf
}

/// Unpacks `n` fields of `width` bits each from `buf` starting at bit 0.
///
/// # Panics
///
/// Panics if the buffer holds fewer than `n·width` bits.
#[must_use]
pub fn unpack_fixed(buf: &BitBuf, n: usize, width: u32) -> Vec<u64> {
    (0..n)
        .map(|i| buf.get_bits(i * width as usize, width))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_buffer() {
        let b = BitBuf::new();
        assert_eq!(b.len(), 0);
        assert!(b.is_empty());
        assert!(b.as_bytes().is_empty());
    }

    #[test]
    fn push_and_get_single_bits() {
        let mut b = BitBuf::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &bit in &pattern {
            b.push_bit(bit);
        }
        assert_eq!(b.len(), 9);
        assert_eq!(b.as_bytes().len(), 2);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(b.get_bit(i), bit, "bit {i}");
        }
    }

    #[test]
    fn push_multi_bit_fields_crossing_bytes() {
        let mut b = BitBuf::new();
        b.push_bits(0b101, 3);
        b.push_bits(0b11_0011_0011, 10); // crosses byte boundary
        b.push_bits(0x1FFF_FFFF, 29);
        assert_eq!(b.get_bits(0, 3), 0b101);
        assert_eq!(b.get_bits(3, 10), 0b11_0011_0011);
        assert_eq!(b.get_bits(13, 29), 0x1FFF_FFFF);
    }

    #[test]
    fn sixty_four_bit_fields() {
        let mut b = BitBuf::new();
        b.push_bit(true); // misalign
        b.push_bits(u64::MAX, 64);
        b.push_bits(0x0123_4567_89AB_CDEF, 64);
        assert_eq!(b.get_bits(1, 64), u64::MAX);
        assert_eq!(b.get_bits(65, 64), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    #[should_panic(expected = "wider than")]
    fn push_rejects_oversized_value() {
        BitBuf::new().push_bits(0b100, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_rejects_out_of_range() {
        let mut b = BitBuf::new();
        b.push_bits(0xFF, 8);
        let _ = b.get_bits(1, 8);
    }

    #[test]
    fn set_bits_overwrites_in_place() {
        let mut b = BitBuf::zeroed(32);
        b.set_bits(5, 0b1011, 4);
        assert_eq!(b.get_bits(5, 4), 0b1011);
        assert_eq!(b.get_bits(0, 5), 0);
        assert_eq!(b.get_bits(9, 23), 0);
        b.set_bits(5, 0b0100, 4);
        assert_eq!(b.get_bits(5, 4), 0b0100);
    }

    #[test]
    fn prefix_truncates_and_zeroes_slack() {
        let mut b = BitBuf::new();
        b.push_bits(0xFFFF, 16);
        let p = b.prefix(5);
        assert_eq!(p.len(), 5);
        assert_eq!(p.as_bytes(), &[0b0001_1111]);
        // A prefix of the full length is identical.
        assert_eq!(b.prefix(16), b);
        // Zero-length prefix.
        assert_eq!(b.prefix(0).len(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds length")]
    fn prefix_rejects_overlong() {
        let _ = BitBuf::zeroed(4).prefix(5);
    }

    #[test]
    fn extend_aligned_and_unaligned() {
        // Aligned destination.
        let mut a = BitBuf::new();
        a.push_bits(0xAB, 8);
        let mut tail = BitBuf::new();
        tail.push_bits(0b101, 3);
        a.extend(&tail);
        assert_eq!(a.len(), 11);
        assert_eq!(a.get_bits(0, 8), 0xAB);
        assert_eq!(a.get_bits(8, 3), 0b101);
        // Unaligned destination.
        let mut b = BitBuf::new();
        b.push_bits(0b11, 2);
        let mut t2 = BitBuf::new();
        t2.push_bits(0x1234, 16);
        b.extend(&t2);
        assert_eq!(b.get_bits(0, 2), 0b11);
        assert_eq!(b.get_bits(2, 16), 0x1234);
    }

    #[test]
    fn from_bytes_roundtrip() {
        let mut b = BitBuf::new();
        b.push_bits(0xDEAD_BEEF, 32);
        b.push_bits(0x5, 3);
        let rebuilt = BitBuf::from_bytes(b.as_bytes().to_vec(), b.len());
        assert_eq!(rebuilt.get_bits(0, 32), 0xDEAD_BEEF);
        assert_eq!(rebuilt.get_bits(32, 3), 0x5);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn from_bytes_rejects_short_buffer() {
        let _ = BitBuf::from_bytes(vec![0u8; 1], 9);
    }

    #[test]
    fn from_bytes_normalizes_oversized_vector() {
        // Regression: surplus trailing bytes used to survive, so a later
        // append wrote *after* them and reads at the old length hit stale
        // data instead of the appended bits.
        let mut b = BitBuf::from_bytes(vec![0xAB, 0xFF, 0xFF], 8);
        assert_eq!(b.as_bytes(), &[0xAB]);
        b.push_bits(0x5, 3);
        assert_eq!(b.get_bits(8, 3), 0x5);
        assert_eq!(b.len(), 11);
    }

    #[test]
    fn from_bytes_clears_dirty_slack() {
        // Regression: slack bits in the final byte used to survive, so a
        // later push ORed into dirty storage and read back wrong values.
        let mut b = BitBuf::from_bytes(vec![0xFF], 3);
        assert_eq!(b.as_bytes(), &[0b0000_0111]);
        b.push_bit(false);
        assert!(!b.get_bit(3));
        let clean = {
            let mut c = BitBuf::new();
            c.push_bits(0b111, 3);
            c.push_bit(false);
            c
        };
        assert_eq!(b, clean);
    }

    #[test]
    fn bitpacker_matches_push_bits_exactly() {
        let fields: Vec<(u64, u32)> = (0..200)
            .map(|i| {
                let w = 1 + (i * 7) % 64;
                let v = (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1))
                    & if w == 64 { u64::MAX } else { (1 << w) - 1 };
                (v, w as u32)
            })
            .collect();
        let mut reference = BitBuf::new();
        let mut packer = BitPacker::with_capacity(0);
        for &(v, w) in &fields {
            reference.push_bits(v, w);
            packer.push(v, w);
            assert_eq!(packer.bit_len(), reference.len());
        }
        assert_eq!(packer.finish(), reference);
    }

    #[test]
    fn bitpacker_empty_and_word_aligned() {
        assert_eq!(BitPacker::with_capacity(8).finish(), BitBuf::new());
        let mut p = BitPacker::with_capacity(128);
        p.push(u64::MAX, 64);
        p.push(0x0123_4567_89AB_CDEF, 64);
        let b = p.finish();
        assert_eq!(b.len(), 128);
        assert_eq!(b.get_bits(0, 64), u64::MAX);
        assert_eq!(b.get_bits(64, 64), 0x0123_4567_89AB_CDEF);
    }

    #[test]
    fn pack_signs_matches_per_bit_pushes() {
        for n in [0usize, 1, 63, 64, 65, 127, 128, 200, 1000] {
            let values: Vec<f32> = (0..n)
                .map(|i| {
                    let v = ((i * 37) % 19) as f32 - 9.0;
                    if i % 5 == 0 {
                        -v
                    } else {
                        v
                    }
                })
                .collect();
            let mut reference = BitBuf::new();
            for &v in &values {
                reference.push_bit(v.is_sign_negative());
            }
            assert_eq!(pack_signs(&values), reference, "n={n}");
        }
    }

    #[test]
    fn pack_signs_treats_negative_zero_as_negative() {
        let b = pack_signs(&[-0.0, 0.0, f32::NEG_INFINITY]);
        assert!(b.get_bit(0));
        assert!(!b.get_bit(1));
        assert!(b.get_bit(2));
    }

    #[test]
    fn pack_unpack_fixed() {
        let values: Vec<u64> = (0..100).map(|i| (i * 37) % 2048).collect();
        let buf = pack_fixed(&values, 11);
        assert_eq!(buf.len(), 1100);
        assert_eq!(unpack_fixed(&buf, 100, 11), values);
    }

    #[test]
    fn slice_extracts_bit_ranges() {
        let values: Vec<u64> = (0..50).map(|i| i * 3 % 128).collect();
        let buf = pack_fixed(&values, 7);
        // Slice coordinates 10..25 of the 7-bit part.
        let s = buf.slice(10 * 7, 15 * 7);
        assert_eq!(s.len(), 105);
        assert_eq!(unpack_fixed(&s, 15, 7), &values[10..25]);
        // Degenerate slices.
        assert_eq!(buf.slice(0, 0).len(), 0);
        assert_eq!(buf.slice(buf.len(), 0).len(), 0);
        // Full slice equals prefix of full length.
        assert_eq!(buf.slice(0, buf.len()), buf.prefix(buf.len()));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn slice_rejects_overrun() {
        let _ = BitBuf::zeroed(10).slice(5, 6);
    }

    #[test]
    fn write_bits_from_roundtrip() {
        let values: Vec<u64> = (0..20).map(|i| i * 5 % 32).collect();
        let src = pack_fixed(&values, 5);
        let mut dst = BitBuf::zeroed(300);
        dst.write_bits_from(37, &src);
        assert_eq!(dst.slice(37, src.len()), src);
        // Surrounding bits untouched.
        assert_eq!(dst.get_bits(0, 37), 0);
        assert_eq!(dst.get_bits(37 + src.len(), 64), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn write_bits_from_rejects_overrun() {
        let src = BitBuf::zeroed(20);
        BitBuf::zeroed(30).write_bits_from(15, &src);
    }

    #[test]
    fn copy_bits_to_matches_slice_bytes() {
        let values: Vec<u64> = (0..200).map(|i| i * 7 % 128).collect();
        let buf = pack_fixed(&values, 7);
        for &(off, len) in &[
            (0usize, 56usize),
            (8, 64),
            (3, 41),
            (13, 0),
            (70, 7),
            (0, 1400),
        ] {
            let expected = buf.slice(off, len);
            let mut dst = vec![0xAAu8; len.div_ceil(8)];
            buf.copy_bits_to(off, len, &mut dst);
            assert_eq!(dst, expected.as_bytes(), "off={off} len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn copy_bits_to_rejects_overrun() {
        let mut dst = [0u8; 2];
        BitBuf::zeroed(10).copy_bits_to(5, 6, &mut dst);
    }

    #[test]
    #[should_panic(expected = "destination must be exactly")]
    fn copy_bits_to_rejects_wrong_dst_size() {
        let mut dst = [0u8; 3];
        BitBuf::zeroed(32).copy_bits_to(0, 16, &mut dst);
    }

    #[test]
    fn write_bits_from_bytes_matches_write_bits_from() {
        let values: Vec<u64> = (0..30).map(|i| i * 11 % 64).collect();
        let src = pack_fixed(&values, 6);
        for &off in &[0usize, 8, 16, 3, 37] {
            let mut via_buf = BitBuf::zeroed(400);
            via_buf.write_bits_from(off, &src);
            let mut via_bytes = BitBuf::zeroed(400);
            via_bytes.write_bits_from_bytes(off, src.as_bytes(), src.len());
            assert_eq!(via_bytes, via_buf, "off={off}");
        }
    }

    #[test]
    fn write_bits_from_bytes_ignores_source_slack_bits() {
        // A wire section's final byte may have had its slack bits set by a
        // corrupting fault; only the valid bits must land.
        let mut dst = BitBuf::zeroed(16);
        dst.write_bits_from_bytes(8, &[0xFF], 3);
        assert_eq!(dst.get_bits(8, 3), 0b111);
        assert_eq!(dst.get_bits(11, 5), 0);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn write_bits_from_bytes_rejects_short_source() {
        BitBuf::zeroed(32).write_bits_from_bytes(0, &[0u8; 1], 9);
    }

    #[test]
    fn bitmask_basics() {
        let mut m = BitMask::absent(10);
        assert_eq!(m.len(), 10);
        assert_eq!(m.count_present(), 0);
        m.set(3, true);
        m.set_range(7, 10, true);
        assert!(m.get(3) && m.get(7) && m.get(9));
        assert!(!m.get(0) && !m.get(6));
        assert_eq!(m.count_present(), 4);
        m.set(3, false);
        assert_eq!(m.count_present(), 3);
        assert_eq!(BitMask::present(5).count_present(), 5);
        assert!(BitMask::absent(0).is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_random_fields(
            fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 1..100)
        ) {
            let mut buf = BitBuf::new();
            let mut expected = Vec::new();
            for &(v, w) in &fields {
                let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
                buf.push_bits(masked, w);
                expected.push((masked, w));
            }
            let mut off = 0;
            for (v, w) in expected {
                prop_assert_eq!(buf.get_bits(off, w), v);
                off += w as usize;
            }
            prop_assert_eq!(buf.len(), off);
        }

        #[test]
        fn prefix_preserves_bits(
            bits in proptest::collection::vec(any::<bool>(), 1..200),
            cut_frac in 0.0f64..=1.0
        ) {
            let mut buf = BitBuf::new();
            for &b in &bits {
                buf.push_bit(b);
            }
            let cut = ((bits.len() as f64) * cut_frac) as usize;
            let p = buf.prefix(cut);
            for (i, &b) in bits.iter().take(cut).enumerate() {
                prop_assert_eq!(p.get_bit(i), b);
            }
        }

        #[test]
        fn copy_bits_to_equals_slice_for_random_ranges(
            bits in proptest::collection::vec(any::<bool>(), 1..400),
            off_frac in 0.0f64..=1.0,
            len_frac in 0.0f64..=1.0
        ) {
            let mut buf = BitBuf::new();
            for &b in &bits {
                buf.push_bit(b);
            }
            let off = ((bits.len() as f64) * off_frac) as usize;
            let len = (((bits.len() - off) as f64) * len_frac) as usize;
            let mut dst = vec![0x55u8; len.div_ceil(8)];
            buf.copy_bits_to(off, len, &mut dst);
            let expected = buf.slice(off, len);
            prop_assert_eq!(&dst[..], expected.as_bytes());
            // And writing those bytes back reproduces the original range.
            let mut back = BitBuf::zeroed(bits.len());
            back.write_bits_from_bytes(off, &dst, len);
            prop_assert_eq!(back.slice(off, len), buf.slice(off, len));
        }

        #[test]
        fn set_bits_roundtrip(
            writes in proptest::collection::vec((0usize..192, any::<u64>(), 1u32..=64), 1..20)
        ) {
            let mut buf = BitBuf::zeroed(256);
            for &(off, v, w) in &writes {
                let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
                buf.set_bits(off, masked, w);
                prop_assert_eq!(buf.get_bits(off, w), masked);
            }
        }
    }
}
