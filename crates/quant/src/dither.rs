//! Subtractive dithering (paper §3.1, "Subtractive Dithering (SD)").
//!
//! SD improves the *worst-case* error of stochastic quantization. Sender and
//! receiver derive the same per-coordinate dither `εᵢ` from the shared seed
//! (no extra communication); the sender quantizes `Q(v) = L·sign(v + εᵢ)` and
//! the receiver decodes `ṽ = Q(v) − εᵢ`.
//!
//! ## Dither range
//!
//! For a binary quantizer with levels `±L` the quantization step is `2L`, so
//! the classic subtractive-dither construction draws `ε ~ U(−L, L)` (half the
//! step on each side). With that choice, for every `|v| ≤ L`:
//!
//! * `E[ṽ] = v` — unbiased, and
//! * `Var[ṽ − v] = L²/3`, **independent of `v`** — compare SQ's `L² − v²`,
//!   which peaks at `L²` for `v = 0`.
//!
//! The paper's text writes `ε ~ U(−L/2, L/2)`; that range paired with levels
//! `±L` yields `E[ṽ] = 2v` (biased) and is presumably a typo — we implement
//! the standard construction whose properties match the ones the paper
//! states (smaller worst-case variance, input-independent). This
//! substitution is documented in `DESIGN.md`.
//!
//! Like SQ, the head is not a bit of the IEEE representation, so the tail
//! carries the full 32-bit float (1 bit/coordinate overhead when untrimmed).

use crate::bitpack::BitBuf;
use crate::scheme::{
    bits_f32, f32_bits, DecodeError, EncodedRow, PartialRow, RowMeta, SchemeId, TrimmableScheme,
};
use crate::stats::std_dev;
use trimgrad_hadamard::prng::Xoshiro256StarStar;

/// Subtractive dithering with range `L = multiplier · σ` and shared-seed dither.
#[derive(Debug, Clone, Copy)]
pub struct SubtractiveDithering {
    /// `L = multiplier · σ`; defaults to 2.5 like SQ.
    pub multiplier: f32,
}

impl Default for SubtractiveDithering {
    fn default() -> Self {
        Self { multiplier: 2.5 }
    }
}

const PART_BITS: [u32; 2] = [1, 32];

impl SubtractiveDithering {
    /// The shared dither stream for a row under `seed`: `εᵢ ~ U(−L, L)`.
    ///
    /// Both `encode` and `decode` must draw the dithers in coordinate order
    /// from the same generator, which this helper guarantees.
    fn dither_stream(seed: u64) -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(seed)
    }
}

impl TrimmableScheme for SubtractiveDithering {
    fn id(&self) -> SchemeId {
        SchemeId::SubtractiveDither
    }

    fn part_bits(&self) -> &'static [u32] {
        &PART_BITS
    }

    fn encode(&self, row: &[f32], seed: u64) -> EncodedRow {
        let l = self.multiplier * std_dev(row);
        let mut rng = Self::dither_stream(seed);
        // One dither draw per coordinate, in order, buffered up front: the
        // generator's state update is a serial chain, so running it tight
        // and letting the add/compare work pipeline over the buffer beats
        // interleaving them. The draw sequence is identical to the scalar
        // path (and to decode) because the draws don't depend on the data.
        // trimlint: allow(hot-path-alloc) -- one dither buffer per row, amortized
        let mut dithers = Vec::with_capacity(row.len());
        for _ in 0..row.len() {
            dithers.push(rng.next_f32_range(-l, l));
        }
        // Head bit 1 encodes the −L level.
        let heads = crate::kernels::pack_bits_zip(row, &dithers, |v, eps| v + eps < 0.0);
        let tails = crate::kernels::pack_f32_tails(row);
        EncodedRow {
            scheme: self.id(),
            n: row.len(),
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: l,
            },
        }
    }

    fn encode_scalar(&self, row: &[f32], seed: u64) -> EncodedRow {
        let l = self.multiplier * std_dev(row);
        let mut rng = Self::dither_stream(seed);
        let mut heads = BitBuf::with_capacity(row.len());
        let mut tails = BitBuf::with_capacity(row.len() * 32);
        for &v in row {
            let eps = rng.next_f32_range(-l, l);
            heads.push_bits(u64::from(v + eps < 0.0), 1);
            tails.push_bits(u64::from(f32_bits(v)), 32);
        }
        EncodedRow {
            scheme: self.id(),
            n: row.len(),
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: l,
            },
        }
    }

    fn decode(
        &self,
        row: &PartialRow<'_>,
        meta: &RowMeta,
        seed: u64,
    ) -> Result<Vec<f32>, DecodeError> {
        row.validate(&PART_BITS)?;
        if meta.original_len != row.n {
            return Err(DecodeError::BadOriginalLen {
                n: row.n,
                original_len: meta.original_len,
            });
        }
        let l = meta.scale;
        let mut rng = Self::dither_stream(seed);
        let mut out = Vec::with_capacity(row.n);
        for i in 0..row.n {
            // Draw unconditionally to stay aligned with the encoder's stream.
            let eps = rng.next_f32_range(-l, l);
            out.push(match row.avail_depth(i) {
                0 => 0.0,
                1 => {
                    let q = if row.parts[0].get(i, 1) == 1 { -l } else { l };
                    q - eps
                }
                _ => bits_f32(row.parts[1].get(i, 32) as u32),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untrimmed_is_bit_exact() {
        let s = SubtractiveDithering::default();
        let r = vec![0.1f32, -2.25, 0.0, 4.0e-5, -0.0, 1.0e4];
        let enc = s.encode(&r, 11);
        let dec = s.decode(&enc.full_view(), &enc.meta, 11).unwrap();
        for (d, v) in dec.iter().zip(&r) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn head_only_is_q_minus_eps() {
        let s = SubtractiveDithering::default();
        let r: Vec<f32> = (0..32).map(|i| ((i as f32) - 16.0) / 8.0).collect();
        let enc = s.encode(&r, 5);
        let l = enc.meta.scale;
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 5).unwrap();
        // Reconstruct the expected values with the same stream.
        let mut rng = Xoshiro256StarStar::new(5);
        for (i, (&d, &v)) in dec.iter().zip(&r).enumerate() {
            let eps = rng.next_f32_range(-l, l);
            let q = if v + eps < 0.0 { -l } else { l };
            assert_eq!(d, q - eps, "coordinate {i}");
            // And the estimate is within the guaranteed worst-case band.
            assert!((d - v).abs() <= 2.0 * l + 1e-4);
        }
    }

    #[test]
    fn head_only_estimate_is_unbiased() {
        let s = SubtractiveDithering::default();
        let r = vec![0.9f32, -0.3, 0.0, 1.1, -0.8, 0.2, 0.6, -1.2];
        let trials = 4000u64;
        let mut acc = vec![0.0f64; r.len()];
        let mut l_mean = 0.0f64;
        for t in 0..trials {
            let enc = s.encode(&r, t);
            l_mean += f64::from(enc.meta.scale);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, t).unwrap();
            for (a, d) in acc.iter_mut().zip(&dec) {
                *a += f64::from(*d);
            }
        }
        let l = l_mean / trials as f64;
        for (a, &v) in acc.iter().zip(&r) {
            let mean = a / trials as f64;
            assert!(
                (mean - f64::from(v)).abs() < 4.0 * l / (trials as f64).sqrt(),
                "coordinate {v}: mean {mean}"
            );
        }
    }

    #[test]
    fn dither_variance_beats_sq_at_zero() {
        // At v = 0 SQ's head-only variance is L²; SD's is L²/3. Check the
        // empirical ratio.
        let sd = SubtractiveDithering::default();
        let sq = crate::stochastic::StochasticQuantization::default();
        // A row whose σ is fixed by the other coordinates; probe coordinate 0 (= 0).
        let r = vec![0.0f32, 1.0, -1.0, 1.0, -1.0, 1.0, -1.0, 1.0];
        let trials = 3000u64;
        let mut var_sd = 0.0f64;
        let mut var_sq = 0.0f64;
        for t in 0..trials {
            let e1 = sd.encode(&r, t);
            let d1 = sd.decode(&e1.trimmed_view(1), &e1.meta, t).unwrap();
            var_sd += f64::from(d1[0]).powi(2);
            let e2 = sq.encode(&r, t);
            let d2 = sq.decode(&e2.trimmed_view(1), &e2.meta, t).unwrap();
            var_sq += f64::from(d2[0]).powi(2);
        }
        var_sd /= trials as f64;
        var_sq /= trials as f64;
        assert!(
            var_sd < 0.5 * var_sq,
            "SD variance {var_sd} should be ≈ var_sq/3 = {}",
            var_sq / 3.0
        );
    }

    #[test]
    fn decode_consumes_dither_for_lost_coords() {
        // Losing coordinate 0 entirely must not desynchronize the dither for
        // coordinate 1.
        let s = SubtractiveDithering::default();
        let r = vec![0.4f32, -0.6, 0.9, -0.2];
        let enc = s.encode(&r, 21);
        let all_head = s.decode(&enc.trimmed_view(1), &enc.meta, 21).unwrap();
        let partial = s
            .decode(&enc.view_with_depths(&[0, 1, 1, 1]), &enc.meta, 21)
            .unwrap();
        assert_eq!(partial[0], 0.0);
        assert_eq!(&partial[1..], &all_head[1..]);
    }

    #[test]
    fn constant_row_degenerates_gracefully() {
        let s = SubtractiveDithering::default();
        let r = vec![2.0f32; 8]; // σ = 0 → L = 0, ε = 0
        let enc = s.encode(&r, 1);
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 1).unwrap();
        for d in dec {
            assert_eq!(d.abs(), 0.0);
        }
    }

    #[test]
    fn empty_row() {
        let s = SubtractiveDithering::default();
        let enc = s.encode(&[], 0);
        assert!(s.decode(&enc.full_view(), &enc.meta, 0).unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_exact(
            r in proptest::collection::vec(-1.0e5f32..1.0e5, 0..100),
            seed in any::<u64>()
        ) {
            let s = SubtractiveDithering::default();
            let enc = s.encode(&r, seed);
            let dec = s.decode(&enc.full_view(), &enc.meta, seed).unwrap();
            for (d, v) in dec.iter().zip(&r) {
                prop_assert_eq!(d.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn head_only_error_bounded(
            r in proptest::collection::vec(-10.0f32..10.0, 1..64),
            seed in any::<u64>()
        ) {
            // |ṽ − v| ≤ 2L for in-range coordinates (q and ε both within ±L).
            let s = SubtractiveDithering::default();
            let enc = s.encode(&r, seed);
            let l = enc.meta.scale;
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, seed).unwrap();
            for (d, &v) in dec.iter().zip(&r) {
                if v.abs() <= l {
                    prop_assert!((d - v).abs() <= 2.0 * l + 1e-3);
                }
            }
        }
    }
}
