//! Reconstruction-error metrics used by tests, benchmarks, and the adaptive
//! scheme selector.
//!
//! The figures of the paper compare encodings by their end-to-end effect on
//! training, which ultimately traces back to the estimation error each
//! encoding incurs per trimmed row. These helpers quantify that error.

/// Normalized mean squared error: `‖est − truth‖² / ‖truth‖²`.
///
/// Returns 0 when both vectors are all-zero and `+∞` when only the truth is.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn nmse(est: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(est.len(), truth.len(), "length mismatch");
    let num: f64 = est
        .iter()
        .zip(truth)
        .map(|(e, t)| (f64::from(*e) - f64::from(*t)).powi(2))
        .sum();
    let den: f64 = truth.iter().map(|&t| f64::from(t).powi(2)).sum();
    if crate::fcmp::exactly_zero_f64(den) {
        if crate::fcmp::exactly_zero_f64(num) {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        num / den
    }
}

/// Mean signed error (bias estimate): `mean(est − truth)`.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn mean_bias(est: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(est.len(), truth.len(), "length mismatch");
    assert!(!est.is_empty(), "empty input");
    est.iter()
        .zip(truth)
        .map(|(e, t)| f64::from(*e) - f64::from(*t))
        .sum::<f64>()
        / est.len() as f64
}

/// Largest absolute per-coordinate error.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn max_abs_err(est: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(est.len(), truth.len(), "length mismatch");
    est.iter()
        .zip(truth)
        .map(|(e, t)| (f64::from(*e) - f64::from(*t)).abs())
        .fold(0.0, f64::max)
}

/// Cosine similarity between the estimate and the truth — the quantity that
/// actually matters for the *direction* of an SGD step. Returns 0 when either
/// vector is all-zero.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[must_use]
pub fn cosine_similarity(est: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(est.len(), truth.len(), "length mismatch");
    let dot: f64 = est
        .iter()
        .zip(truth)
        .map(|(e, t)| f64::from(*e) * f64::from(*t))
        .sum();
    let ne: f64 = est
        .iter()
        .map(|&v| f64::from(v).powi(2))
        .sum::<f64>()
        .sqrt();
    let nt: f64 = truth
        .iter()
        .map(|&v| f64::from(v).powi(2))
        .sum::<f64>()
        .sqrt();
    if crate::fcmp::exactly_zero_f64(ne) || crate::fcmp::exactly_zero_f64(nt) {
        0.0
    } else {
        dot / (ne * nt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nmse_zero_for_exact() {
        let v = [1.0, -2.0, 3.0];
        assert_eq!(nmse(&v, &v), 0.0);
    }

    #[test]
    fn nmse_one_for_zero_estimate() {
        let t = [3.0, -4.0];
        assert!((nmse(&[0.0, 0.0], &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nmse_degenerate_cases() {
        assert_eq!(nmse(&[0.0], &[0.0]), 0.0);
        assert_eq!(nmse(&[1.0], &[0.0]), f64::INFINITY);
        assert_eq!(nmse(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn nmse_rejects_mismatch() {
        let _ = nmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn bias_signs() {
        assert!(mean_bias(&[2.0, 2.0], &[1.0, 1.0]) > 0.0);
        assert!(mean_bias(&[0.0, 0.0], &[1.0, 1.0]) < 0.0);
        assert_eq!(mean_bias(&[1.0, 3.0], &[2.0, 2.0]), 0.0);
    }

    #[test]
    fn max_abs_err_picks_worst() {
        assert_eq!(max_abs_err(&[1.0, 5.0, 2.0], &[1.0, 1.0, 1.5]), 4.0);
        assert_eq!(max_abs_err(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_basics() {
        let v = [1.0, 2.0, -1.0];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
        let neg: Vec<f32> = v.iter().map(|x| -x).collect();
        assert!((cosine_similarity(&neg, &v) + 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0; 3], &v), 0.0);
        // Orthogonal.
        assert!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-12);
    }
}
