//! Float comparison helpers — the one sanctioned site for `==` on floats.
//!
//! The repo's `trimgrad-lint` pass flags every `==`/`!=` against a float
//! literal (`float-eq`): sprinkled exact comparisons are how convergence
//! checks and sparsity masks silently diverge between builds. Code that
//! genuinely needs a float test calls these helpers instead, so the intent
//! (bitwise-exact mask vs. tolerance check) is explicit and auditable in one
//! place.

/// Default relative tolerance for [`approx_eq`] on `f32` values.
pub const REL_EPS_F32: f32 = 1e-6;

/// Default relative tolerance for [`approx_eq_f64`] on `f64` values.
pub const REL_EPS_F64: f64 = 1e-12;

/// Bitwise-exact zero test (`+0.0` and `-0.0` both match).
///
/// Use for sparsity masks and guards before division, where "exactly the
/// value written" is the semantics — not for convergence checks.
#[must_use]
pub fn exactly_zero(x: f32) -> bool {
    // trimlint: allow(float-eq) -- designated exact-comparison site
    x == 0.0
}

/// Bitwise-exact zero test for `f64`.
#[must_use]
pub fn exactly_zero_f64(x: f64) -> bool {
    // trimlint: allow(float-eq) -- designated exact-comparison site
    x == 0.0
}

/// Relative-tolerance equality: `|a − b| ≤ eps · max(|a|, |b|, 1)`.
///
/// The `1` floor makes the tolerance absolute near zero, so
/// `approx_eq(1e-9, 0.0, 1e-6)` holds.
#[must_use]
pub fn approx_eq(a: f32, b: f32, eps: f32) -> bool {
    (a - b).abs() <= eps * a.abs().max(b.abs()).max(1.0)
}

/// Relative-tolerance equality for `f64`; see [`approx_eq`].
#[must_use]
pub fn approx_eq_f64(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps * a.abs().max(b.abs()).max(1.0)
}

/// Absolute-tolerance zero test: `|x| ≤ tol`.
#[must_use]
pub fn approx_zero(x: f32, tol: f32) -> bool {
    x.abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_zero_matches_both_signs() {
        assert!(exactly_zero(0.0));
        assert!(exactly_zero(-0.0));
        assert!(!exactly_zero(f32::MIN_POSITIVE));
        assert!(exactly_zero_f64(0.0));
        assert!(!exactly_zero_f64(f64::MIN_POSITIVE));
    }

    #[test]
    fn approx_eq_is_relative_with_absolute_floor() {
        assert!(approx_eq(1e-9, 0.0, REL_EPS_F32));
        assert!(approx_eq(1e6, 1e6 + 0.5, REL_EPS_F32));
        assert!(!approx_eq(1.0, 1.001, REL_EPS_F32));
        assert!(approx_eq_f64(1e-15, 0.0, REL_EPS_F64));
        assert!(!approx_eq_f64(1.0, 1.0 + 1e-9, REL_EPS_F64));
    }

    #[test]
    fn approx_zero_uses_absolute_tolerance() {
        assert!(approx_zero(-1e-7, 1e-6));
        assert!(!approx_zero(2e-6, 1e-6));
    }
}
