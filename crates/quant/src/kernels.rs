//! Fused quantize+bitpack encode kernels (bit-parallel fast paths).
//!
//! Each scheme's `encode` used to emit one `BitBuf::push_bits` call per
//! coordinate per part — a per-byte read-modify-write loop that dominated
//! `encode_row_32k`. These kernels fuse the quantization decision with
//! word-at-a-time packing: sign planes are gathered 64 coordinates per `u64`
//! (`f32::to_bits() >> 31` shifted into lane position), and multi-bit fields
//! stream through [`BitPacker`]'s shift/or accumulator, one 8-byte store per
//! 64 bits. All loops are branch-light over contiguous slices, so the
//! compiler can vectorize the gathers.
//!
//! Output is bit-identical to the scalar reference
//! ([`crate::scheme::TrimmableScheme::encode_scalar`]): both produce the same
//! LSB-first bitstream field by field, only the store granularity differs.
//! The golden tests in `crates/quant/tests/encode_golden.rs` pin this
//! byte-for-byte for every scheme.

use crate::bitpack::{pack_signs, BitBuf, BitPacker};

/// Splits IEEE-754 floats into a 1-bit sign plane and 31-bit
/// exponent+mantissa tails — the sign-magnitude and RHT 1-bit layout.
// trimlint: hot-path -- per-row packing kernel on the encode path
#[must_use]
pub fn encode_sign31_parts(values: &[f32]) -> (BitBuf, BitBuf) {
    let heads = pack_signs(values);
    // trimlint: allow(hot-path-alloc) -- one tail buffer per row, amortized
    let mut tails = BitPacker::with_capacity(values.len() * 31);
    for &v in values {
        tails.push(u64::from(v.to_bits() & 0x7FFF_FFFF), 31);
    }
    (heads, tails.finish())
}

/// Splits IEEE-754 floats into 1-bit sign, 8-bit exponent, and 23-bit
/// mantissa planes — the multi-level RHT layout.
// trimlint: hot-path -- per-row packing kernel on the encode path
#[must_use]
pub fn encode_sign_exp_mant_parts(values: &[f32]) -> (BitBuf, BitBuf, BitBuf) {
    let signs = pack_signs(values);
    // trimlint: allow(hot-path-alloc) -- one exponent buffer per row, amortized
    let mut exps = BitPacker::with_capacity(values.len() * 8);
    // trimlint: allow(hot-path-alloc) -- one mantissa buffer per row, amortized
    let mut mants = BitPacker::with_capacity(values.len() * 23);
    for &v in values {
        let bits = v.to_bits();
        exps.push(u64::from((bits >> 23) & 0xFF), 8);
        mants.push(u64::from(bits & 0x7F_FFFF), 23);
    }
    (signs, exps.finish(), mants.finish())
}

/// Packs the full 32-bit patterns of `values` — the SQ/SD tails.
///
/// A 32-bit field written at a 32-bit-aligned offset of the LSB-first
/// stream is exactly the little-endian bytes of the value, so the whole
/// part is a flat byte copy — no bit accumulator needed.
// trimlint: hot-path -- per-row packing kernel on the encode path
#[must_use]
pub fn pack_f32_tails(values: &[f32]) -> BitBuf {
    // trimlint: allow(hot-path-alloc) -- one tail buffer per row, amortized
    let mut bytes = vec![0u8; values.len() * 4];
    for (dst, &v) in bytes.chunks_exact_mut(4).zip(values) {
        dst.copy_from_slice(&v.to_bits().to_le_bytes());
    }
    BitBuf::from_bytes(bytes, values.len() * 32)
}

/// Packs `n` predicate bits produced in coordinate order, gathering 64 into
/// each `u64` word. `bit(i)` is called exactly once per coordinate, strictly
/// in increasing `i` order — the SQ/SD encoders rely on this because their
/// per-coordinate PRNG draws are part of the wire contract.
// trimlint: hot-path -- head-plane packing for the stochastic encoders
#[must_use]
pub fn pack_bits_ordered(n: usize, mut bit: impl FnMut(usize) -> bool) -> BitBuf {
    // trimlint: allow(hot-path-alloc) -- one head buffer per row, amortized
    let mut out = BitPacker::with_capacity(n);
    let mut i = 0;
    while i + 64 <= n {
        let mut word = 0u64;
        for j in 0..64 {
            word |= u64::from(bit(i + j)) << j;
        }
        out.push(word, 64);
        i += 64;
    }
    if i < n {
        let mut word = 0u64;
        for j in 0..n - i {
            word |= u64::from(bit(i + j)) << j;
        }
        out.push(word, (n - i) as u32);
    }
    out.finish()
}

/// Packs `a.len()` predicate bits of `f(a[i], b[i])`, gathering 64 per
/// `u64` word. Iterates both slices by `chunks_exact` + `zip` so the inner
/// loop carries no bounds checks — the closure is evaluated strictly in
/// increasing `i` order, once per coordinate.
// trimlint: hot-path -- head-plane packing for the stochastic encoders
#[must_use]
pub fn pack_bits_zip(a: &[f32], b: &[f32], mut f: impl FnMut(f32, f32) -> bool) -> BitBuf {
    assert_eq!(a.len(), b.len(), "pack_bits_zip: slice lengths differ");
    // trimlint: allow(hot-path-alloc) -- one head buffer per row, amortized
    let mut out = BitPacker::with_capacity(a.len());
    let mut ac = a.chunks_exact(64);
    let mut bc = b.chunks_exact(64);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        let mut word = 0u64;
        for (j, (&x, &y)) in ca.iter().zip(cb).enumerate() {
            word |= u64::from(f(x, y)) << j;
        }
        out.push(word, 64);
    }
    let (ra, rb) = (ac.remainder(), bc.remainder());
    if !ra.is_empty() {
        let mut word = 0u64;
        for (j, (&x, &y)) in ra.iter().zip(rb).enumerate() {
            word |= u64::from(f(x, y)) << j;
        }
        out.push(word, ra.len() as u32);
    }
    out.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let v = ((i * 37) % 101) as f32 / 7.0 - 7.0;
                if i % 3 == 0 {
                    -v
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn sign31_matches_per_coordinate_pushes() {
        for n in [0usize, 1, 63, 64, 65, 300, 1024] {
            let values = sample(n);
            let mut heads = BitBuf::with_capacity(n);
            let mut tails = BitBuf::with_capacity(n * 31);
            for &v in &values {
                let bits = v.to_bits();
                heads.push_bits(u64::from(bits >> 31), 1);
                tails.push_bits(u64::from(bits & 0x7FFF_FFFF), 31);
            }
            assert_eq!(encode_sign31_parts(&values), (heads, tails), "n={n}");
        }
    }

    #[test]
    fn sign_exp_mant_matches_per_coordinate_pushes() {
        for n in [0usize, 1, 64, 65, 500] {
            let values = sample(n);
            let mut signs = BitBuf::with_capacity(n);
            let mut exps = BitBuf::with_capacity(n * 8);
            let mut mants = BitBuf::with_capacity(n * 23);
            for &v in &values {
                let bits = v.to_bits();
                signs.push_bits(u64::from(bits >> 31), 1);
                exps.push_bits(u64::from((bits >> 23) & 0xFF), 8);
                mants.push_bits(u64::from(bits & 0x7F_FFFF), 23);
            }
            assert_eq!(
                encode_sign_exp_mant_parts(&values),
                (signs, exps, mants),
                "n={n}"
            );
        }
    }

    #[test]
    fn f32_tails_match_per_coordinate_pushes() {
        let values = sample(130);
        let mut reference = BitBuf::with_capacity(values.len() * 32);
        for &v in &values {
            reference.push_bits(u64::from(v.to_bits()), 32);
        }
        assert_eq!(pack_f32_tails(&values), reference);
    }

    #[test]
    fn zip_bits_match_per_coordinate_pushes() {
        for n in [0usize, 1, 63, 64, 65, 129, 300] {
            let a = sample(n);
            let b: Vec<f32> = sample(n).iter().map(|v| v * 0.3 - 0.1).collect();
            let mut reference = BitBuf::with_capacity(n);
            for (&x, &y) in a.iter().zip(&b) {
                reference.push_bits(u64::from(x + y < 0.0), 1);
            }
            assert_eq!(
                pack_bits_zip(&a, &b, |x, y| x + y < 0.0),
                reference,
                "n={n}"
            );
        }
    }

    #[test]
    fn ordered_bits_visit_every_index_once_in_order() {
        for n in [0usize, 1, 63, 64, 65, 129] {
            let mut visited = Vec::new();
            let buf = pack_bits_ordered(n, |i| {
                visited.push(i);
                i % 3 == 1
            });
            assert_eq!(visited, (0..n).collect::<Vec<_>>(), "n={n}");
            assert_eq!(buf.len(), n);
            for i in 0..n {
                assert_eq!(buf.get_bit(i), i % 3 == 1, "n={n} i={i}");
            }
        }
    }
}
