//! Trimmable gradient quantization schemes.
//!
//! This crate implements the algorithmic core of *"When ML Training Cuts
//! Through Congestion: Just-in-Time Gradient Compression via Packet
//! Trimming"* (HotNets '24): encodings that split every gradient coordinate
//! into a `P`-bit **head** and a `Q`-bit **tail** such that
//!
//! * when nothing is trimmed, head + tail reconstruct the original value
//!   (bit-exactly for the sign-based schemes),
//! * when a congested switch trims a packet down to its heads, the receiver
//!   still decodes a useful low-precision estimate of every coordinate.
//!
//! # Schemes
//!
//! | Scheme | Head | Head-only decode | Character |
//! |---|---|---|---|
//! | [`signmag::SignMagnitude`] | sign bit of the float | `±σ` | biased; diverges ≥ ~2% trimming (paper Fig 3) |
//! | [`stochastic::StochasticQuantization`] | Bernoulli bit, `p₊ = (L+v)/2L`, `L = 2.5σ` | `±L` | unbiased (TernGrad-style) |
//! | [`dither::SubtractiveDithering`] | `sign(v + ε)`, shared-randomness dither | `L·sign(v+ε) − ε` | unbiased, input-independent worst-case error |
//! | [`rht1bit::RhtOneBit`] | sign of the RHT-rotated coordinate | `f·sign`, `f = ‖r‖₂²/‖r‖₁`, then inverse RHT | unbiased, error spread across the row (DRIVE-style) |
//! | [`multilevel::MultiLevelRht`] | sign, then exponent (parts 1/8/23 bits) | per-level | §5.1 multi-level trimming |
//!
//! # Architecture
//!
//! Every scheme implements [`scheme::TrimmableScheme`]: `encode` produces an
//! [`scheme::EncodedRow`] whose payload is a sequence of fixed-width
//! bit-packed **parts** (part 0 is the head). The wire layer lays parts out
//! front-to-back in each packet so that switch trimming truncates whole
//! trailing parts. `decode` accepts a [`scheme::PartialRow`] describing,
//! per coordinate, which prefix of parts survived.
//!
//! ```
//! use trimgrad_quant::scheme::{TrimmableScheme, PartialRow, PartView};
//! use trimgrad_quant::rht1bit::RhtOneBit;
//!
//! let scheme = RhtOneBit::default();
//! let grad: Vec<f32> = (0..256).map(|i| ((i * 7 % 23) as f32 - 11.0) / 11.0).collect();
//! let enc = scheme.encode(&grad, /*seed=*/ 42);
//!
//! // Untrimmed: decoding is exact up to the rotation's rounding error.
//! let exact = scheme.decode(&enc.full_view(), &enc.meta, 42).unwrap();
//! for (d, v) in exact.iter().zip(&grad) {
//!     assert!((d - v).abs() < 1e-4);
//! }
//!
//! // Fully trimmed (heads only): decoding is approximate but unbiased.
//! let view = PartialRow { n: enc.n, parts: vec![PartView::Full(&enc.parts[0]), PartView::Absent] };
//! let est = scheme.decode(&view, &enc.meta, 42).unwrap();
//! assert_eq!(est.len(), grad.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitpack;
pub mod dither;
pub mod error;
pub mod fcmp;
pub mod kernels;
pub mod multilevel;
pub mod rht1bit;
pub mod scheme;
pub mod signmag;
pub mod stats;
pub mod stochastic;

pub use scheme::{EncodedRow, PartView, PartialRow, RowMeta, SchemeId, TrimmableScheme};

/// Constructs the scheme implementation for a [`SchemeId`] with default
/// parameters (the ones used throughout the paper's evaluation).
#[must_use]
pub fn scheme_for(id: SchemeId) -> Box<dyn TrimmableScheme> {
    match id {
        SchemeId::SignMagnitude => Box::new(signmag::SignMagnitude),
        SchemeId::Stochastic => Box::new(stochastic::StochasticQuantization::default()),
        SchemeId::SubtractiveDither => Box::new(dither::SubtractiveDithering::default()),
        SchemeId::RhtOneBit => Box::new(rht1bit::RhtOneBit),
        SchemeId::MultiLevelRht => Box::new(multilevel::MultiLevelRht),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_for_covers_all_ids() {
        for id in SchemeId::ALL {
            let s = scheme_for(id);
            assert_eq!(s.id(), id);
            // Every scheme's head is its first part.
            assert!(!s.part_bits().is_empty());
            assert!(s.part_bits().iter().all(|&b| b > 0));
            // The static geometry table must agree with the implementation.
            assert_eq!(s.part_bits(), id.part_bits());
        }
    }
}
