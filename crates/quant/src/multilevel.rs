//! Multi-level trimmable RHT encoding (paper §5.1, "Multi-Level Trimming").
//!
//! The paper proposes letting switches pick between several trimming depths —
//! e.g. trim a packet to 25% (≈8 bits per 32-bit coordinate) under mild
//! congestion or to ~3% (1 bit) under severe congestion — which requires an
//! encoding decodable from *any prefix of its parts*.
//!
//! This scheme splits each RHT-rotated float into the three natural IEEE-754
//! fields, in decreasing order of importance:
//!
//! | Part | Bits | Contents | Decode when it is the deepest available |
//! |---|---|---|---|
//! | 0 (head) | 1 | sign | `f·sign` (the DRIVE estimate) |
//! | 1 | 8 | biased exponent | `±2^(e−127)·1.5` (mantissa midpoint) |
//! | 2 | 23 | mantissa | exact rotated float |
//!
//! The midpoint fill is the conditional mean: for a mantissa uniform on
//! `[1, 2)` the expected significand is 1.5, so the sign+exponent decode is
//! (conditionally) unbiased within each binade. A switch can thus trim
//! gradient packets to 1-bit heads (3% of payload) or 9-bit heads (28%)
//! depending on queue pressure — close to the paper's 3% / 25% example.

use crate::bitpack::BitBuf;
use crate::scheme::{
    bits_f32, f32_bits, DecodeError, EncodedRow, PartialRow, RowMeta, SchemeId, TrimmableScheme,
};
use crate::stats::drive_scale;
use trimgrad_hadamard::next_pow2;
use trimgrad_hadamard::rht::RandomizedHadamard;

/// The three-part (1/8/23-bit) prefix-decodable RHT scheme.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiLevelRht;

const PART_BITS: [u32; 3] = [1, 8, 23];

/// Mantissa midpoint: the expected significand fraction, `0b100…0` (2²²).
const MANTISSA_MIDPOINT: u32 = 1 << 22;

impl TrimmableScheme for MultiLevelRht {
    fn id(&self) -> SchemeId {
        SchemeId::MultiLevelRht
    }

    fn part_bits(&self) -> &'static [u32] {
        &PART_BITS
    }

    fn encode(&self, row: &[f32], seed: u64) -> EncodedRow {
        if row.is_empty() {
            return EncodedRow {
                scheme: self.id(),
                n: 0,
                parts: vec![BitBuf::new(), BitBuf::new(), BitBuf::new()],
                meta: RowMeta {
                    original_len: 0,
                    scale: 0.0,
                },
            };
        }
        let rht = RandomizedHadamard::new(seed);
        let rotated = rht.forward_padded(row);
        let f = drive_scale(&rotated);
        let n = rotated.len();
        let (signs, exps, mants) = crate::kernels::encode_sign_exp_mant_parts(&rotated);
        EncodedRow {
            scheme: self.id(),
            n,
            parts: vec![signs, exps, mants],
            meta: RowMeta {
                original_len: row.len(),
                scale: f,
            },
        }
    }

    fn encode_scalar(&self, row: &[f32], seed: u64) -> EncodedRow {
        if row.is_empty() {
            return self.encode(row, seed);
        }
        let rht = RandomizedHadamard::new(seed);
        let rotated = rht.forward_padded(row);
        let f = drive_scale(&rotated);
        let n = rotated.len();
        let mut signs = BitBuf::with_capacity(n);
        let mut exps = BitBuf::with_capacity(n * 8);
        let mut mants = BitBuf::with_capacity(n * 23);
        for &r in &rotated {
            let bits = f32_bits(r);
            signs.push_bits(u64::from(bits >> 31), 1);
            exps.push_bits(u64::from((bits >> 23) & 0xFF), 8);
            mants.push_bits(u64::from(bits & 0x7F_FFFF), 23);
        }
        EncodedRow {
            scheme: self.id(),
            n,
            parts: vec![signs, exps, mants],
            meta: RowMeta {
                original_len: row.len(),
                scale: f,
            },
        }
    }

    fn decode(
        &self,
        row: &PartialRow<'_>,
        meta: &RowMeta,
        seed: u64,
    ) -> Result<Vec<f32>, DecodeError> {
        row.validate(&PART_BITS)?;
        if row.n == 0 {
            return if meta.original_len == 0 {
                Ok(Vec::new())
            } else {
                Err(DecodeError::BadOriginalLen {
                    n: 0,
                    original_len: meta.original_len,
                })
            };
        }
        if next_pow2(meta.original_len) != row.n || meta.original_len == 0 {
            return Err(DecodeError::BadOriginalLen {
                n: row.n,
                original_len: meta.original_len,
            });
        }
        let f = meta.scale;
        let mut rotated = Vec::with_capacity(row.n);
        for i in 0..row.n {
            rotated.push(match row.avail_depth(i) {
                0 => 0.0,
                1 => {
                    if row.parts[0].get(i, 1) == 1 {
                        -f
                    } else {
                        f
                    }
                }
                2 => {
                    let sign = row.parts[0].get(i, 1) as u32;
                    let exp = row.parts[1].get(i, 8) as u32;
                    if exp == 0 {
                        // Zero / subnormal binade: the midpoint of [0, 2^-126)
                        // is negligible for gradients; decode as signed zero.
                        bits_f32(sign << 31)
                    } else {
                        bits_f32((sign << 31) | (exp << 23) | MANTISSA_MIDPOINT)
                    }
                }
                _ => {
                    let sign = row.parts[0].get(i, 1) as u32;
                    let exp = row.parts[1].get(i, 8) as u32;
                    let mant = row.parts[2].get(i, 23) as u32;
                    bits_f32((sign << 31) | (exp << 23) | mant)
                }
            });
        }
        let rht = RandomizedHadamard::new(seed);
        Ok(rht.inverse_padded(&rotated, meta.original_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgrad_hadamard::prng::Xoshiro256StarStar;

    fn gaussian_row(n: usize, seed: u64) -> Vec<f32> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.next_f32()).sum::<f32>() - 6.0)
            .collect()
    }

    fn l2_err(dec: &[f32], truth: &[f32]) -> f64 {
        dec.iter()
            .zip(truth)
            .map(|(d, v)| (f64::from(*d) - f64::from(*v)).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn geometry_is_1_8_23() {
        let s = MultiLevelRht;
        assert_eq!(s.part_bits(), &[1, 8, 23]);
        assert_eq!(s.bits_per_coord(), 32);
        assert_eq!(s.head_bits(), 1);
    }

    #[test]
    fn untrimmed_roundtrip_within_rounding() {
        let s = MultiLevelRht;
        let r = gaussian_row(200, 1);
        let enc = s.encode(&r, 77);
        let dec = s.decode(&enc.full_view(), &enc.meta, 77).unwrap();
        for (d, v) in dec.iter().zip(&r) {
            assert!((d - v).abs() < 1e-4 + 1e-5 * v.abs());
        }
    }

    #[test]
    fn error_strictly_improves_with_depth() {
        let s = MultiLevelRht;
        let r = gaussian_row(512, 2);
        let enc = s.encode(&r, 3);
        let e1 = l2_err(&s.decode(&enc.trimmed_view(1), &enc.meta, 3).unwrap(), &r);
        let e2 = l2_err(&s.decode(&enc.trimmed_view(2), &enc.meta, 3).unwrap(), &r);
        let e3 = l2_err(&s.decode(&enc.trimmed_view(3), &enc.meta, 3).unwrap(), &r);
        assert!(e3 < e2, "full ({e3}) must beat sign+exp ({e2})");
        assert!(e2 < e1, "sign+exp ({e2}) must beat sign-only ({e1})");
        // Sign+exponent keeps the value within its binade: relative l2 error
        // is bounded by the worst-case significand gap (|1.m − 1.5| < 0.5 →
        // ≤ 33% relative), plus rotation rounding.
        let norm = r.iter().map(|&v| f64::from(v).powi(2)).sum::<f64>().sqrt();
        assert!(e2 / norm < 0.35, "sign+exp relative error {}", e2 / norm);
    }

    #[test]
    fn depth_one_matches_drive_decode() {
        // With only signs available this scheme must agree with RhtOneBit.
        use crate::rht1bit::RhtOneBit;
        let r = gaussian_row(128, 4);
        let ml = MultiLevelRht;
        let enc_ml = ml.encode(&r, 9);
        let dec_ml = ml.decode(&enc_ml.trimmed_view(1), &enc_ml.meta, 9).unwrap();
        let ob = RhtOneBit;
        let enc_ob = ob.encode(&r, 9);
        let dec_ob = ob.decode(&enc_ob.trimmed_view(1), &enc_ob.meta, 9).unwrap();
        for (a, b) in dec_ml.iter().zip(&dec_ob) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn per_coordinate_mixed_depths() {
        let s = MultiLevelRht;
        let r = gaussian_row(64, 5);
        let enc = s.encode(&r, 6);
        let depths: Vec<usize> = (0..enc.n).map(|i| i % 4).collect(); // includes 0 = lost
        let dec = s
            .decode(&enc.view_with_depths(&depths), &enc.meta, 6)
            .unwrap();
        assert_eq!(dec.len(), r.len());
        assert!(dec.iter().all(|d| d.is_finite()));
    }

    #[test]
    fn zero_exponent_decodes_to_zero_at_depth_two() {
        // A zero coordinate has exp = 0; the sign+exp decode must not invent
        // a subnormal midpoint.
        let s = MultiLevelRht;
        let r = vec![0.0f32; 8]; // rotated row is all zeros
        let enc = s.encode(&r, 1);
        let dec = s.decode(&enc.trimmed_view(2), &enc.meta, 1).unwrap();
        for d in dec {
            assert_eq!(d, 0.0);
        }
    }

    #[test]
    fn empty_row() {
        let s = MultiLevelRht;
        let enc = s.encode(&[], 0);
        assert!(s.decode(&enc.full_view(), &enc.meta, 0).unwrap().is_empty());
    }

    #[test]
    fn trim_budget_matches_paper_levels() {
        // Heads-only keeps 1/32 ≈ 3% of payload; sign+exp keeps 9/32 ≈ 28%,
        // near the paper's "25% or 3%" example.
        let s = MultiLevelRht;
        let total: u32 = s.part_bits().iter().sum();
        assert_eq!(total, 32);
        let head_frac = f64::from(s.part_bits()[0]) / f64::from(total);
        let two_frac = f64::from(s.part_bits()[0] + s.part_bits()[1]) / f64::from(total);
        assert!(head_frac < 0.04);
        assert!((0.2..0.3).contains(&two_frac));
    }
}
