//! RHT-based 1-bit trimmable encoding (paper §3.2, adapted from DRIVE).
//!
//! The row is first rotated with the seeded Randomized Hadamard Transform.
//! After the rotation every coordinate is a ±-signed average of the whole
//! row and is approximately `N(0, ‖V‖₂²/n)`-distributed, so its **sign** is
//! the natural 1-bit quantization: the head is `sign(rᵢ)` and the tail the
//! remaining 31 bits of the rotated float — zero space overhead, exactly as
//! in the sign-magnitude scheme, but now the quantization error of trimmed
//! coordinates is *shared* by all coordinates of the row instead of being
//! concentrated on whichever coordinates were unlucky.
//!
//! Trimmed coordinates are reconstructed as `f·sign(rᵢ)` with the unbiased
//! scale `f = ‖V‖₂²/‖R(V)‖₁` (shipped reliably), then the inverse RHT maps
//! the mixed exact/estimated rotated row back to the original basis.

use crate::bitpack::BitBuf;
use crate::scheme::{
    bits_f32, f32_bits, DecodeError, EncodedRow, PartialRow, RowMeta, SchemeId, TrimmableScheme,
};
use crate::stats::drive_scale;
use trimgrad_hadamard::next_pow2;
use trimgrad_hadamard::rht::RandomizedHadamard;

/// The DRIVE-style 1-bit RHT scheme. Stateless; rows are padded to the next
/// power of two internally.
#[derive(Debug, Clone, Copy, Default)]
pub struct RhtOneBit;

const PART_BITS: [u32; 2] = [1, 31];

impl TrimmableScheme for RhtOneBit {
    fn id(&self) -> SchemeId {
        SchemeId::RhtOneBit
    }

    fn part_bits(&self) -> &'static [u32] {
        &PART_BITS
    }

    fn encode(&self, row: &[f32], seed: u64) -> EncodedRow {
        if row.is_empty() {
            return EncodedRow {
                scheme: self.id(),
                n: 0,
                parts: vec![BitBuf::new(), BitBuf::new()],
                meta: RowMeta {
                    original_len: 0,
                    scale: 0.0,
                },
            };
        }
        let rht = RandomizedHadamard::new(seed);
        let rotated = rht.forward_padded(row);
        let f = drive_scale(&rotated);
        let n = rotated.len();
        let (heads, tails) = crate::kernels::encode_sign31_parts(&rotated);
        EncodedRow {
            scheme: self.id(),
            n,
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: f,
            },
        }
    }

    fn encode_scalar(&self, row: &[f32], seed: u64) -> EncodedRow {
        if row.is_empty() {
            return self.encode(row, seed);
        }
        let rht = RandomizedHadamard::new(seed);
        let rotated = rht.forward_padded(row);
        let f = drive_scale(&rotated);
        let n = rotated.len();
        let mut heads = BitBuf::with_capacity(n);
        let mut tails = BitBuf::with_capacity(n * 31);
        for &r in &rotated {
            let bits = f32_bits(r);
            heads.push_bits(u64::from(bits >> 31), 1);
            tails.push_bits(u64::from(bits & 0x7FFF_FFFF), 31);
        }
        EncodedRow {
            scheme: self.id(),
            n,
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: f,
            },
        }
    }

    fn decode(
        &self,
        row: &PartialRow<'_>,
        meta: &RowMeta,
        seed: u64,
    ) -> Result<Vec<f32>, DecodeError> {
        row.validate(&PART_BITS)?;
        if row.n == 0 {
            return if meta.original_len == 0 {
                Ok(Vec::new())
            } else {
                Err(DecodeError::BadOriginalLen {
                    n: 0,
                    original_len: meta.original_len,
                })
            };
        }
        if next_pow2(meta.original_len) != row.n || meta.original_len == 0 {
            return Err(DecodeError::BadOriginalLen {
                n: row.n,
                original_len: meta.original_len,
            });
        }
        let f = meta.scale;
        let mut rotated = Vec::with_capacity(row.n);
        for i in 0..row.n {
            rotated.push(match row.avail_depth(i) {
                0 => 0.0,
                1 => {
                    if row.parts[0].get(i, 1) == 1 {
                        -f
                    } else {
                        f
                    }
                }
                _ => {
                    let sign = row.parts[0].get(i, 1) as u32;
                    let rest = row.parts[1].get(i, 31) as u32;
                    bits_f32((sign << 31) | rest)
                }
            });
        }
        let rht = RandomizedHadamard::new(seed);
        Ok(rht.inverse_padded(&rotated, meta.original_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use trimgrad_hadamard::prng::Xoshiro256StarStar;

    fn gaussian_row(n: usize, seed: u64) -> Vec<f32> {
        // Box-Muller-ish sum of uniforms is fine for test data.
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..n)
            .map(|_| (0..12).map(|_| rng.next_f32()).sum::<f32>() - 6.0)
            .collect()
    }

    #[test]
    fn untrimmed_roundtrip_within_rounding() {
        let s = RhtOneBit;
        let r = gaussian_row(300, 1); // non-power-of-two: exercises padding
        let enc = s.encode(&r, 42);
        assert_eq!(enc.n, 512);
        let dec = s.decode(&enc.full_view(), &enc.meta, 42).unwrap();
        assert_eq!(dec.len(), r.len());
        for (d, v) in dec.iter().zip(&r) {
            assert!((d - v).abs() < 1e-4 + 1e-5 * v.abs(), "{d} vs {v}");
        }
    }

    #[test]
    fn zero_space_overhead() {
        let s = RhtOneBit;
        assert_eq!(s.bits_per_coord(), 32);
        let enc = s.encode(&gaussian_row(256, 2), 0);
        assert_eq!(enc.total_bits(), 256 * 32);
    }

    #[test]
    fn heads_only_error_much_smaller_than_signal() {
        // With every tail trimmed, the relative l2 error of the DRIVE decode
        // concentrates around sqrt(1 - 2/π) ≈ 0.6 for Gaussian rows — in
        // particular it must stay well below 1 (the error of decoding zeros).
        let s = RhtOneBit;
        let r = gaussian_row(1024, 3);
        let enc = s.encode(&r, 7);
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 7).unwrap();
        let num: f64 = dec
            .iter()
            .zip(&r)
            .map(|(d, v)| (f64::from(*d) - f64::from(*v)).powi(2))
            .sum();
        let den: f64 = r.iter().map(|&v| f64::from(v).powi(2)).sum();
        let rel = (num / den).sqrt();
        assert!(
            (0.4..0.8).contains(&rel),
            "relative error {rel} outside DRIVE's expected band"
        );
    }

    #[test]
    fn heads_only_beats_signmag_in_l2() {
        // The whole point of the rotation (paper Fig 3 at 50% trim).
        use crate::scheme::TrimmableScheme as _;
        use crate::signmag::SignMagnitude;
        // A spiky row is the adversarial case for per-coordinate ±σ decoding.
        let mut r = vec![0.01f32; 1024];
        r[5] = 10.0;
        r[600] = -7.0;
        let rht_err = {
            let s = RhtOneBit;
            let enc = s.encode(&r, 9);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 9).unwrap();
            dec.iter()
                .zip(&r)
                .map(|(d, v)| (f64::from(*d) - f64::from(*v)).powi(2))
                .sum::<f64>()
        };
        let sm_err = {
            let s = SignMagnitude;
            let enc = s.encode(&r, 9);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 9).unwrap();
            dec.iter()
                .zip(&r)
                .map(|(d, v)| (f64::from(*d) - f64::from(*v)).powi(2))
                .sum::<f64>()
        };
        assert!(
            rht_err < sm_err,
            "RHT {rht_err} should beat sign-magnitude {sm_err} on spiky rows"
        );
    }

    #[test]
    fn mixed_trimming_interpolates() {
        let s = RhtOneBit;
        let r = gaussian_row(256, 4);
        let enc = s.encode(&r, 5);
        // Half the coordinates keep their tails.
        let depths: Vec<usize> = (0..enc.n).map(|i| if i % 2 == 0 { 2 } else { 1 }).collect();
        let half = s
            .decode(&enc.view_with_depths(&depths), &enc.meta, 5)
            .unwrap();
        let err = |dec: &[f32]| -> f64 {
            dec.iter()
                .zip(&r)
                .map(|(d, v)| (f64::from(*d) - f64::from(*v)).powi(2))
                .sum()
        };
        let full = s.decode(&enc.full_view(), &enc.meta, 5).unwrap();
        let heads = s.decode(&enc.trimmed_view(1), &enc.meta, 5).unwrap();
        assert!(err(&full) < err(&half));
        assert!(err(&half) < err(&heads));
    }

    #[test]
    fn wrong_seed_fails_to_reconstruct() {
        let s = RhtOneBit;
        let r = gaussian_row(128, 6);
        let enc = s.encode(&r, 100);
        let dec = s.decode(&enc.full_view(), &enc.meta, 101).unwrap();
        let err: f64 = dec
            .iter()
            .zip(&r)
            .map(|(d, v)| (f64::from(*d) - f64::from(*v)).abs())
            .sum();
        assert!(err > 1.0, "wrong seed must not invert the rotation");
    }

    #[test]
    fn empty_row() {
        let s = RhtOneBit;
        let enc = s.encode(&[], 0);
        assert_eq!(enc.n, 0);
        assert!(s.decode(&enc.full_view(), &enc.meta, 0).unwrap().is_empty());
    }

    #[test]
    fn rejects_inconsistent_original_len() {
        let s = RhtOneBit;
        let enc = s.encode(&gaussian_row(100, 7), 1);
        assert_eq!(enc.n, 128);
        let bad = RowMeta {
            original_len: 300, // needs n = 512, not 128
            scale: enc.meta.scale,
        };
        assert!(matches!(
            s.decode(&enc.full_view(), &bad, 1),
            Err(DecodeError::BadOriginalLen { .. })
        ));
    }

    #[test]
    fn head_only_is_unbiased_over_seeds() {
        // Averaging head-only decodes across independent rotation seeds must
        // converge to the original row (DRIVE's unbiasedness).
        let s = RhtOneBit;
        let r = gaussian_row(64, 8);
        let trials = 2000u64;
        let mut acc = vec![0.0f64; r.len()];
        for t in 0..trials {
            let enc = s.encode(&r, t);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, t).unwrap();
            for (a, d) in acc.iter_mut().zip(&dec) {
                *a += f64::from(*d);
            }
        }
        let norm = (r.iter().map(|&v| f64::from(v).powi(2)).sum::<f64>() / r.len() as f64).sqrt();
        for (a, &v) in acc.iter().zip(&r) {
            let mean = a / trials as f64;
            assert!(
                (mean - f64::from(v)).abs() < 6.0 * norm / (trials as f64).sqrt(),
                "coordinate {v}: mean {mean}"
            );
        }
    }

    proptest! {
        #[test]
        fn roundtrip_any_row(
            r in proptest::collection::vec(-100.0f32..100.0, 1..200),
            seed in any::<u64>()
        ) {
            let s = RhtOneBit;
            let enc = s.encode(&r, seed);
            prop_assert!(enc.n.is_power_of_two());
            let dec = s.decode(&enc.full_view(), &enc.meta, seed).unwrap();
            prop_assert_eq!(dec.len(), r.len());
            for (d, v) in dec.iter().zip(&r) {
                prop_assert!((d - v).abs() <= 1e-2 + 1e-4 * v.abs());
            }
        }

        #[test]
        fn heads_only_never_panics_and_is_finite(
            r in proptest::collection::vec(-100.0f32..100.0, 1..200),
            seed in any::<u64>()
        ) {
            let s = RhtOneBit;
            let enc = s.encode(&r, seed);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, seed).unwrap();
            prop_assert_eq!(dec.len(), r.len());
            for d in dec {
                prop_assert!(d.is_finite());
            }
        }
    }
}
