//! The `TrimmableScheme` abstraction: multi-part encodings whose prefixes
//! decode.
//!
//! The paper (§3) frames trimmable quantization as "efficiently encoding the
//! gradient into two or more parts of predetermined length, such that a
//! decoder can decode using any number of parts forming a prefix of the
//! encoding". This module fixes that contract in types:
//!
//! * [`EncodedRow`] — the sender-side result: `k` bit-packed **parts**, each
//!   holding one fixed-width field per coordinate, plus small [`RowMeta`]
//!   shipped reliably (never trimmed).
//! * [`PartialRow`] — the receiver-side input: for each part, either the full
//!   buffer, a masked buffer (some packets of the row trimmed, others not),
//!   or nothing. Availability must be *prefix-closed* per coordinate: a
//!   coordinate cannot have part `k` without parts `0..k`.
//! * [`TrimmableScheme`] — encode/decode plus the part geometry that the wire
//!   layer uses to lay heads before tails in each packet.

use crate::bitpack::{BitBuf, BitMask};

/// Identifies a trimmable encoding on the wire (1 byte in the TrimGrad header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum SchemeId {
    /// Head = IEEE sign bit, head-only decode `±σ` (paper §3.1).
    SignMagnitude = 0,
    /// TernGrad-style stochastic quantization, `L = 2.5σ` (paper §3.1).
    Stochastic = 1,
    /// Subtractive dithering with shared-randomness dither (paper §3.1).
    SubtractiveDither = 2,
    /// DRIVE-style 1-bit encoding of the RHT-rotated row (paper §3.2).
    RhtOneBit = 3,
    /// Three-part (1/8/23-bit) prefix-decodable RHT encoding (paper §5.1).
    MultiLevelRht = 4,
}

impl SchemeId {
    /// All scheme identifiers, in wire-id order.
    pub const ALL: [SchemeId; 5] = [
        SchemeId::SignMagnitude,
        SchemeId::Stochastic,
        SchemeId::SubtractiveDither,
        SchemeId::RhtOneBit,
        SchemeId::MultiLevelRht,
    ];

    /// Parses a wire identifier.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<SchemeId> {
        SchemeId::ALL.get(v as usize).copied()
    }

    /// The wire identifier.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// The part geometry of this scheme (static; equals
    /// [`TrimmableScheme::part_bits`] of the corresponding implementation).
    /// Lets wire-format code compute payload layouts without instantiating
    /// the scheme.
    #[must_use]
    pub fn part_bits(self) -> &'static [u32] {
        match self {
            SchemeId::SignMagnitude | SchemeId::RhtOneBit => &[1, 31],
            SchemeId::Stochastic | SchemeId::SubtractiveDither => &[1, 32],
            SchemeId::MultiLevelRht => &[1, 8, 23],
        }
    }

    /// Short lower-case name used in benchmark output and examples.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SchemeId::SignMagnitude => "signmag",
            SchemeId::Stochastic => "sq",
            SchemeId::SubtractiveDither => "sd",
            SchemeId::RhtOneBit => "rht",
            SchemeId::MultiLevelRht => "rht-ml",
        }
    }
}

impl core::fmt::Display for SchemeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Small per-row side data shipped in reliable (never-trimmed) packets.
///
/// The interpretation of `scale` is scheme-specific: `σ` for sign-magnitude,
/// `L = 2.5σ` for SQ/SD, and the DRIVE factor `f = ‖r‖₂²/‖r‖₁` for the RHT
/// schemes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowMeta {
    /// Number of *original* (pre-padding) coordinates in the row.
    pub original_len: usize,
    /// Scheme-specific scaling factor.
    pub scale: f32,
}

/// A fully-encoded row, before packetization.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedRow {
    /// The scheme that produced this row.
    pub scheme: SchemeId,
    /// Encoded row length (≥ `meta.original_len`; RHT schemes pad to a power
    /// of two).
    pub n: usize,
    /// `parts[k]` holds `n` fields of `part_bits()[k]` bits each; part 0 is
    /// the head, later parts are progressively trimmed first.
    pub parts: Vec<BitBuf>,
    /// Reliable side data.
    pub meta: RowMeta,
}

impl EncodedRow {
    /// A view with every part fully available (the untrimmed case).
    #[must_use]
    pub fn full_view(&self) -> PartialRow<'_> {
        PartialRow {
            n: self.n,
            parts: self.parts.iter().map(PartView::Full).collect(),
        }
    }

    /// A view with only the first `depth` parts available for every
    /// coordinate (uniform trimming). `depth = 1` is the classic
    /// "heads only" trim; `depth = parts.len()` equals [`full_view`](Self::full_view).
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or exceeds the part count — a fully-lost row
    /// has no view; model it at the packet layer instead.
    #[must_use]
    pub fn trimmed_view(&self, depth: usize) -> PartialRow<'_> {
        assert!(
            depth >= 1 && depth <= self.parts.len(),
            "trim depth {depth} out of range 1..={}",
            self.parts.len()
        );
        PartialRow {
            n: self.n,
            parts: self
                .parts
                .iter()
                .enumerate()
                .map(|(k, p)| {
                    if k < depth {
                        PartView::Full(p)
                    } else {
                        PartView::Absent
                    }
                })
                .collect(),
        }
    }

    /// A view where coordinate `i` has `depths[i]` parts available
    /// (0 = nothing survived for that coordinate).
    ///
    /// # Panics
    ///
    /// Panics if `depths.len() != n` or any depth exceeds the part count.
    #[must_use]
    pub fn view_with_depths(&self, depths: &[usize]) -> PartialRow<'_> {
        assert_eq!(depths.len(), self.n, "one depth per coordinate");
        let k = self.parts.len();
        assert!(
            depths.iter().all(|&d| d <= k),
            "depth exceeds part count {k}"
        );
        let parts = self
            .parts
            .iter()
            .enumerate()
            .map(|(level, buf)| {
                let mut present = BitMask::absent(self.n);
                let mut any = false;
                let mut all = true;
                for (i, &d) in depths.iter().enumerate() {
                    let p = d > level;
                    present.set(i, p);
                    any |= p;
                    all &= p;
                }
                if all {
                    PartView::Full(buf)
                } else if any {
                    PartView::Masked { buf, present }
                } else {
                    PartView::Absent
                }
            })
            .collect();
        PartialRow { n: self.n, parts }
    }

    /// Total encoded size in bits (all parts, excluding metadata).
    #[must_use]
    pub fn total_bits(&self) -> usize {
        self.parts.iter().map(BitBuf::len).sum()
    }
}

/// Availability of one encoding part on the receiver.
#[derive(Debug, Clone)]
pub enum PartView<'a> {
    /// Every coordinate's field arrived.
    Full(&'a BitBuf),
    /// Some coordinates' fields arrived; `present` says which. `buf` keeps
    /// full stride (absent entries hold unspecified bits that must not be
    /// read).
    Masked {
        /// Full-stride field buffer.
        buf: &'a BitBuf,
        /// Per-coordinate presence.
        present: BitMask,
    },
    /// The entire part was trimmed for every coordinate.
    Absent,
}

impl PartView<'_> {
    /// Whether coordinate `i`'s field is available in this part.
    #[must_use]
    pub fn has(&self, i: usize) -> bool {
        match self {
            PartView::Full(_) => true,
            PartView::Masked { present, .. } => present.get(i),
            PartView::Absent => false,
        }
    }

    /// Reads coordinate `i`'s `width`-bit field.
    ///
    /// # Panics
    ///
    /// Panics if the field is not available (callers must check [`has`](Self::has)).
    #[must_use]
    pub fn get(&self, i: usize, width: u32) -> u64 {
        match self {
            PartView::Full(buf) => buf.get_bits(i * width as usize, width),
            PartView::Masked { buf, present } => {
                assert!(present.get(i), "coordinate {i} absent in masked part");
                buf.get_bits(i * width as usize, width)
            }
            // trimlint: allow(hot-path-panic) -- diagnosed misuse guard per the # Panics contract; callers check has() first
            PartView::Absent => panic!("coordinate {i} read from absent part"),
        }
    }
}

/// What the receiver reassembled for one row: per-part availability.
#[derive(Debug, Clone)]
pub struct PartialRow<'a> {
    /// Encoded row length (matches [`EncodedRow::n`]).
    pub n: usize,
    /// One view per encoding part.
    pub parts: Vec<PartView<'a>>,
}

impl PartialRow<'_> {
    /// Number of consecutive parts available for coordinate `i`, starting
    /// from part 0. Returns 0 when even the head is missing (whole packet
    /// lost rather than trimmed).
    #[must_use]
    pub fn avail_depth(&self, i: usize) -> usize {
        self.parts.iter().take_while(|p| p.has(i)).count()
    }

    /// Validates structural invariants against a scheme's geometry:
    /// part count matches, buffers hold `n` fields, and availability is
    /// prefix-closed for every coordinate.
    ///
    /// # Errors
    ///
    /// Returns the specific [`DecodeError`] violated.
    pub fn validate(&self, part_bits: &[u32]) -> Result<(), DecodeError> {
        if self.parts.len() != part_bits.len() {
            return Err(DecodeError::PartCountMismatch {
                expected: part_bits.len(),
                got: self.parts.len(),
            });
        }
        for (k, (view, &w)) in self.parts.iter().zip(part_bits).enumerate() {
            let need = self.n * w as usize;
            let have = match view {
                PartView::Full(b) => Some(b.len()),
                PartView::Masked { buf, present } => {
                    if present.len() != self.n {
                        return Err(DecodeError::LengthMismatch {
                            part: k,
                            expected: need,
                            got: present.len(),
                        });
                    }
                    Some(buf.len())
                }
                PartView::Absent => None,
            };
            if let Some(have) = have {
                if have < need {
                    return Err(DecodeError::LengthMismatch {
                        part: k,
                        expected: need,
                        got: have,
                    });
                }
            }
        }
        // Prefix closure: no coordinate may have part k without part k-1.
        for i in 0..self.n {
            let mut seen_gap = false;
            for (k, view) in self.parts.iter().enumerate() {
                if view.has(i) {
                    if seen_gap {
                        return Err(DecodeError::PrefixViolation { coord: i, part: k });
                    }
                } else {
                    seen_gap = true;
                }
            }
        }
        Ok(())
    }
}

/// Errors surfaced while decoding a [`PartialRow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The view has a different number of parts than the scheme.
    PartCountMismatch {
        /// Scheme's part count.
        expected: usize,
        /// View's part count.
        got: usize,
    },
    /// A part buffer or mask is too short for `n` coordinates.
    LengthMismatch {
        /// Which part.
        part: usize,
        /// Bits (or entries) required.
        expected: usize,
        /// Bits (or entries) found.
        got: usize,
    },
    /// Coordinate has a later part without an earlier one — impossible under
    /// trimming, indicates reassembly corruption.
    PrefixViolation {
        /// The offending coordinate.
        coord: usize,
        /// The part present despite an earlier gap.
        part: usize,
    },
    /// `meta.original_len` is inconsistent with the encoded length `n`.
    BadOriginalLen {
        /// Encoded (padded) length.
        n: usize,
        /// Claimed original length.
        original_len: usize,
    },
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::PartCountMismatch { expected, got } => {
                write!(f, "expected {expected} parts, got {got}")
            }
            DecodeError::LengthMismatch {
                part,
                expected,
                got,
            } => {
                write!(f, "part {part}: expected {expected} bits, got {got}")
            }
            DecodeError::PrefixViolation { coord, part } => {
                write!(
                    f,
                    "coordinate {coord} has part {part} but misses an earlier part"
                )
            }
            DecodeError::BadOriginalLen { n, original_len } => {
                write!(
                    f,
                    "original_len {original_len} inconsistent with encoded n {n}"
                )
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A trimmable gradient encoding.
///
/// Implementations must uphold:
///
/// * **Exactness** — decoding a [`EncodedRow::full_view`] reproduces the
///   input row bit-exactly (for schemes whose parts partition the IEEE-754
///   representation) or within floating-point rounding (RHT schemes, which
///   round-trip through the rotation).
/// * **Graceful degradation** — decoding succeeds for *any* prefix-closed
///   availability, including heads-only and fully-lost coordinates.
/// * **Determinism** — `encode(row, seed)` and the matching `decode` depend
///   only on their arguments (shared randomness comes from `seed`).
pub trait TrimmableScheme: Send + Sync {
    /// The wire identifier of this scheme.
    fn id(&self) -> SchemeId;

    /// Field width of each part, head first. The sum for the sign-based
    /// schemes is 32 (a repartition of the IEEE-754 float costing no extra
    /// space); SQ/SD pay one extra bit (head 1 + tail 32) because their
    /// stochastic head is not a bit of the original representation.
    fn part_bits(&self) -> &'static [u32];

    /// Encodes one gradient row with the shared `seed`.
    fn encode(&self, row: &[f32], seed: u64) -> EncodedRow;

    /// Encodes via the retained scalar per-coordinate reference path.
    ///
    /// Bit-identical to [`encode`](Self::encode) by contract: the fused
    /// word-at-a-time kernels in [`crate::kernels`] emit the same LSB-first
    /// bitstream field by field, only the store granularity differs. Kept as
    /// the differential baseline for the golden tests and benchmarks; the
    /// default delegates to `encode` for schemes without a separate fast
    /// path.
    fn encode_scalar(&self, row: &[f32], seed: u64) -> EncodedRow {
        self.encode(row, seed)
    }

    /// Decodes a (possibly trimmed) row back into `meta.original_len`
    /// coordinates. Coordinates whose head was lost entirely decode to `0.0`
    /// (the neutral element of gradient averaging).
    ///
    /// # Errors
    ///
    /// Structural errors only ([`DecodeError`]); trimming is not an error.
    fn decode(
        &self,
        row: &PartialRow<'_>,
        meta: &RowMeta,
        seed: u64,
    ) -> Result<Vec<f32>, DecodeError>;

    /// Head width in bits (`part_bits()[0]`).
    fn head_bits(&self) -> u32 {
        self.part_bits()[0]
    }

    /// Total encoded bits per coordinate.
    fn bits_per_coord(&self) -> u32 {
        self.part_bits().iter().sum()
    }
}

/// Reinterprets an `f32` as its IEEE-754 bit pattern.
#[must_use]
pub fn f32_bits(v: f32) -> u32 {
    v.to_bits()
}

/// Reinterprets an IEEE-754 bit pattern as `f32`.
#[must_use]
pub fn bits_f32(bits: u32) -> f32 {
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_id_wire_roundtrip() {
        for id in SchemeId::ALL {
            assert_eq!(SchemeId::from_u8(id.as_u8()), Some(id));
        }
        assert_eq!(SchemeId::from_u8(5), None);
        assert_eq!(SchemeId::from_u8(255), None);
    }

    #[test]
    fn scheme_id_names_unique() {
        let mut names: Vec<_> = SchemeId::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SchemeId::ALL.len());
        assert_eq!(SchemeId::RhtOneBit.to_string(), "rht");
    }

    fn sample_row() -> EncodedRow {
        // Two parts of widths 1 and 3, n = 4.
        let mut head = BitBuf::new();
        let mut tail = BitBuf::new();
        for i in 0..4u64 {
            head.push_bits(i % 2, 1);
            tail.push_bits(i * 2 % 8, 3);
        }
        EncodedRow {
            scheme: SchemeId::SignMagnitude,
            n: 4,
            parts: vec![head, tail],
            meta: RowMeta {
                original_len: 4,
                scale: 1.0,
            },
        }
    }

    #[test]
    fn full_view_has_max_depth_everywhere() {
        let row = sample_row();
        let v = row.full_view();
        for i in 0..4 {
            assert_eq!(v.avail_depth(i), 2);
        }
        assert!(v.validate(&[1, 3]).is_ok());
    }

    #[test]
    fn trimmed_view_depths() {
        let row = sample_row();
        let v = row.trimmed_view(1);
        for i in 0..4 {
            assert_eq!(v.avail_depth(i), 1);
        }
        assert!(v.validate(&[1, 3]).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trimmed_view_rejects_zero_depth() {
        let _ = sample_row().trimmed_view(0);
    }

    #[test]
    fn view_with_depths_mixed() {
        let row = sample_row();
        let v = row.view_with_depths(&[2, 1, 0, 2]);
        assert_eq!(v.avail_depth(0), 2);
        assert_eq!(v.avail_depth(1), 1);
        assert_eq!(v.avail_depth(2), 0);
        assert_eq!(v.avail_depth(3), 2);
        assert!(v.validate(&[1, 3]).is_ok());
        // Fields still readable where available.
        assert_eq!(v.parts[0].get(0, 1), 0);
        assert_eq!(v.parts[1].get(3, 3), 6);
    }

    #[test]
    fn validate_catches_part_count_mismatch() {
        let row = sample_row();
        let v = row.full_view();
        assert_eq!(
            v.validate(&[1, 3, 7]),
            Err(DecodeError::PartCountMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn validate_catches_short_buffer() {
        let row = sample_row();
        let v = row.full_view();
        // Claim widths larger than what the buffers hold.
        assert!(matches!(
            v.validate(&[2, 3]),
            Err(DecodeError::LengthMismatch { part: 0, .. })
        ));
    }

    #[test]
    fn validate_catches_prefix_violation() {
        let row = sample_row();
        // Coordinate 1: head absent but tail present — impossible under trimming.
        let mut head_mask = BitMask::present(4);
        head_mask.set(1, false);
        let v = PartialRow {
            n: 4,
            parts: vec![
                PartView::Masked {
                    buf: &row.parts[0],
                    present: head_mask,
                },
                PartView::Full(&row.parts[1]),
            ],
        };
        assert_eq!(
            v.validate(&[1, 3]),
            Err(DecodeError::PrefixViolation { coord: 1, part: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "absent in masked part")]
    fn masked_get_panics_on_absent_coord() {
        let row = sample_row();
        let mut present = BitMask::absent(4);
        present.set(0, true);
        let view = PartView::Masked {
            buf: &row.parts[0],
            present,
        };
        let _ = view.get(2, 1);
    }

    #[test]
    fn f32_bit_helpers_roundtrip() {
        for v in [0.0f32, -0.0, 1.5, -3.25e-7, f32::MAX, f32::MIN_POSITIVE] {
            assert_eq!(bits_f32(f32_bits(v)).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn decode_error_messages() {
        let e = DecodeError::PrefixViolation { coord: 3, part: 1 };
        assert!(e.to_string().contains("coordinate 3"));
        let e = DecodeError::BadOriginalLen {
            n: 8,
            original_len: 9,
        };
        assert!(e.to_string().contains("inconsistent"));
    }
}
