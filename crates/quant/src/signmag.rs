//! Sign-magnitude quantization (paper §3.1, "Sign-magnitude Quantization").
//!
//! The most straightforward trimmable encoding: the 1-bit head is the IEEE
//! sign bit of the coordinate, the 31-bit tail is the exponent and mantissa.
//! Untrimmed packets therefore reconstruct the original float **bit-exactly
//! with zero space overhead**. When trimmed, the receiver decodes the sign
//! bits into `{−σ, +σ}` using the row's standard deviation `σ`, which the
//! sender ships separately in a small reliable packet.
//!
//! This decode is *biased* (`E[±σ] ≠ v` unless `|v| = σ`), which is why
//! training with it diverges once ≳2% of packets are trimmed (paper Fig 3) —
//! the scheme is included as the paper's cautionary baseline.

use crate::bitpack::BitBuf;
use crate::scheme::{
    bits_f32, f32_bits, DecodeError, EncodedRow, PartialRow, RowMeta, SchemeId, TrimmableScheme,
};
use crate::stats::std_dev;

/// The sign-magnitude trimmable scheme. Stateless; `Default` is the paper's
/// configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct SignMagnitude;

const PART_BITS: [u32; 2] = [1, 31];

impl TrimmableScheme for SignMagnitude {
    fn id(&self) -> SchemeId {
        SchemeId::SignMagnitude
    }

    fn part_bits(&self) -> &'static [u32] {
        &PART_BITS
    }

    fn encode(&self, row: &[f32], _seed: u64) -> EncodedRow {
        let (heads, tails) = crate::kernels::encode_sign31_parts(row);
        EncodedRow {
            scheme: self.id(),
            n: row.len(),
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: std_dev(row),
            },
        }
    }

    fn encode_scalar(&self, row: &[f32], _seed: u64) -> EncodedRow {
        let mut heads = BitBuf::with_capacity(row.len());
        let mut tails = BitBuf::with_capacity(row.len() * 31);
        for &v in row {
            let bits = f32_bits(v);
            heads.push_bits(u64::from(bits >> 31), 1);
            tails.push_bits(u64::from(bits & 0x7FFF_FFFF), 31);
        }
        EncodedRow {
            scheme: self.id(),
            n: row.len(),
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: std_dev(row),
            },
        }
    }

    fn decode(
        &self,
        row: &PartialRow<'_>,
        meta: &RowMeta,
        _seed: u64,
    ) -> Result<Vec<f32>, DecodeError> {
        row.validate(&PART_BITS)?;
        if meta.original_len != row.n {
            return Err(DecodeError::BadOriginalLen {
                n: row.n,
                original_len: meta.original_len,
            });
        }
        let sigma = meta.scale;
        let mut out = Vec::with_capacity(row.n);
        for i in 0..row.n {
            out.push(match row.avail_depth(i) {
                0 => 0.0,
                1 => {
                    if row.parts[0].get(i, 1) == 1 {
                        -sigma
                    } else {
                        sigma
                    }
                }
                _ => {
                    let sign = row.parts[0].get(i, 1) as u32;
                    let rest = row.parts[1].get(i, 31) as u32;
                    bits_f32((sign << 31) | rest)
                }
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn row() -> Vec<f32> {
        vec![0.5, -1.25, 3.0e-3, -0.0, 7.75, -2.5e4, 0.0, 1.0]
    }

    #[test]
    fn untrimmed_is_bit_exact() {
        let s = SignMagnitude;
        let r = row();
        let enc = s.encode(&r, 0);
        let dec = s.decode(&enc.full_view(), &enc.meta, 0).unwrap();
        for (d, v) in dec.iter().zip(&r) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn zero_space_overhead() {
        let s = SignMagnitude;
        let enc = s.encode(&row(), 0);
        assert_eq!(enc.total_bits(), row().len() * 32);
        assert_eq!(s.bits_per_coord(), 32);
    }

    #[test]
    fn heads_only_decodes_signed_sigma() {
        let s = SignMagnitude;
        let r = row();
        let enc = s.encode(&r, 0);
        let sigma = enc.meta.scale;
        assert!(sigma > 0.0);
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 0).unwrap();
        for (d, v) in dec.iter().zip(&r) {
            let expect = if v.is_sign_negative() { -sigma } else { sigma };
            assert_eq!(*d, expect, "value {v}");
        }
    }

    #[test]
    fn lost_head_decodes_zero() {
        let s = SignMagnitude;
        let r = row();
        let enc = s.encode(&r, 0);
        let dec = s
            .decode(
                &enc.view_with_depths(&[0, 2, 1, 0, 2, 2, 2, 2]),
                &enc.meta,
                0,
            )
            .unwrap();
        assert_eq!(dec[0], 0.0);
        assert_eq!(dec[1].to_bits(), r[1].to_bits());
        assert_eq!(dec[2], enc.meta.scale); // positive head-only
        assert_eq!(dec[3], 0.0);
    }

    #[test]
    fn empty_row() {
        let s = SignMagnitude;
        let enc = s.encode(&[], 0);
        assert_eq!(enc.n, 0);
        let dec = s.decode(&enc.full_view(), &enc.meta, 0).unwrap();
        assert!(dec.is_empty());
    }

    #[test]
    fn bad_original_len_rejected() {
        let s = SignMagnitude;
        let enc = s.encode(&row(), 0);
        let bad = RowMeta {
            original_len: 3,
            scale: 1.0,
        };
        assert!(matches!(
            s.decode(&enc.full_view(), &bad, 0),
            Err(DecodeError::BadOriginalLen { .. })
        ));
    }

    #[test]
    fn head_only_bias_is_real() {
        // Document the known flaw: ±σ decode is biased for |v| far from σ.
        let s = SignMagnitude;
        let r = vec![10.0f32, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1];
        let enc = s.encode(&r, 0);
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 0).unwrap();
        // The large coordinate collapses to +σ, a gross underestimate.
        assert!(dec[0] < 0.5 * r[0]);
    }

    proptest! {
        #[test]
        fn roundtrip_exact_for_any_row(
            r in proptest::collection::vec(-1.0e6f32..1.0e6, 0..128),
            seed in any::<u64>()
        ) {
            let s = SignMagnitude;
            let enc = s.encode(&r, seed);
            let dec = s.decode(&enc.full_view(), &enc.meta, seed).unwrap();
            prop_assert_eq!(dec.len(), r.len());
            for (d, v) in dec.iter().zip(&r) {
                prop_assert_eq!(d.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn heads_only_magnitude_is_sigma(
            r in proptest::collection::vec(-100.0f32..100.0, 1..64)
        ) {
            let s = SignMagnitude;
            let enc = s.encode(&r, 0);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 0).unwrap();
            for d in dec {
                prop_assert!((d.abs() - enc.meta.scale).abs() < 1e-6);
            }
        }
    }
}
