//! Streaming statistics over gradient rows.
//!
//! The scalar schemes scale their 1-bit heads by quantities derived from the
//! row being encoded — the standard deviation `σ` (sign-magnitude), the
//! clipping range `L = 2.5σ` (SQ/SD, following TernGrad), or the DRIVE scale
//! `f = ‖r‖₂²/‖r‖₁` (RHT). These are the values the sender ships in small,
//! reliable metadata packets. All accumulation is in `f64` so that rows of
//! 2¹⁵ single-precision coordinates do not lose precision.

/// Number of independent accumulators in [`lane_sum`].
const SUM_LANES: usize = 8;

/// Sums `f` over `xs` with eight independent f64 accumulators.
///
/// A single-accumulator float sum is a serial dependency chain (one add
/// latency per element); eight lanes let the adds pipeline and vectorize.
/// The lane-then-tail combination order is fixed, so the result is still
/// fully deterministic — it is simply a *different* (and permanent) order
/// than a plain left fold. Every scale the encoders derive goes through
/// here on both the fused and scalar paths, so the two stay bit-identical.
// trimlint: hot-path -- row-scale reduction on every encode
fn lane_sum(xs: &[f32], mut f: impl FnMut(f32) -> f64) -> f64 {
    let mut acc = [0.0f64; SUM_LANES];
    let mut chunks = xs.chunks_exact(SUM_LANES);
    for c in &mut chunks {
        for (a, &v) in acc.iter_mut().zip(c) {
            *a += f(v);
        }
    }
    let mut tail = 0.0;
    for &v in chunks.remainder() {
        tail += f(v);
    }
    acc.iter().sum::<f64>() + tail
}

/// Population standard deviation of `xs` (σ with denominator `n`).
///
/// Returns 0 for empty or constant input.
#[must_use]
pub fn std_dev(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = lane_sum(xs, f64::from) / n;
    let var = lane_sum(xs, |v| {
        let d = f64::from(v) - mean;
        d * d
    }) / n;
    var.sqrt() as f32
}

/// ℓ₁ norm of `xs`.
#[must_use]
pub fn l1_norm(xs: &[f32]) -> f64 {
    lane_sum(xs, |v| f64::from(v).abs())
}

/// Squared ℓ₂ norm of `xs`.
#[must_use]
pub fn l2_norm_sq(xs: &[f32]) -> f64 {
    lane_sum(xs, |v| f64::from(v) * f64::from(v))
}

/// ℓ₂ norm of `xs`.
#[must_use]
pub fn l2_norm(xs: &[f32]) -> f64 {
    l2_norm_sq(xs).sqrt()
}

/// The DRIVE unbiased scaling factor for a rotated row `r`:
/// `f = ‖r‖₂² / ‖r‖₁`.
///
/// Decoding a trimmed coordinate as `f·sign(rᵢ)` makes the reconstruction an
/// unbiased estimate of the rotated row under the random rotation. Returns 0
/// for an all-zero (or empty) row, in which case `f·sign = 0` is exact.
#[must_use]
pub fn drive_scale(rotated: &[f32]) -> f32 {
    let l1 = l1_norm(rotated);
    if crate::fcmp::exactly_zero_f64(l1) {
        return 0.0;
    }
    (l2_norm_sq(rotated) / l1) as f32
}

/// Clamps `v` to `[-limit, limit]`.
#[must_use]
pub fn clip(v: f32, limit: f32) -> f32 {
    v.clamp(-limit, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn std_dev_edge_cases() {
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert_eq!(std_dev(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn std_dev_known_value() {
        // Population σ of [1, 2, 3, 4] is sqrt(5/4).
        let s = std_dev(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s - (1.25f32).sqrt()).abs() < 1e-6, "{s}");
    }

    #[test]
    fn std_dev_shift_invariant() {
        let a = [0.5, -1.5, 2.0, 0.0, 3.5];
        let b: Vec<f32> = a.iter().map(|v| v + 1000.0).collect();
        assert!((std_dev(&a) - std_dev(&b)).abs() < 1e-4);
    }

    #[test]
    fn norms_known_values() {
        let v = [3.0, -4.0];
        assert_eq!(l1_norm(&v), 7.0);
        assert_eq!(l2_norm_sq(&v), 25.0);
        assert_eq!(l2_norm(&v), 5.0);
        assert_eq!(l1_norm(&[]), 0.0);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn drive_scale_uniform_signs() {
        // For a row of ±c the scale must be exactly c.
        let r = [2.0, -2.0, 2.0, 2.0, -2.0];
        assert!((drive_scale(&r) - 2.0).abs() < 1e-6);
    }

    #[test]
    fn drive_scale_zero_row() {
        assert_eq!(drive_scale(&[0.0; 8]), 0.0);
        assert_eq!(drive_scale(&[]), 0.0);
    }

    #[test]
    fn clip_bounds() {
        assert_eq!(clip(5.0, 2.0), 2.0);
        assert_eq!(clip(-5.0, 2.0), -2.0);
        assert_eq!(clip(1.5, 2.0), 1.5);
        assert_eq!(clip(-2.0, 2.0), -2.0);
    }

    proptest! {
        #[test]
        fn drive_scale_is_magnitude_weighted_mean(
            r in proptest::collection::vec(-10.0f32..10.0, 1..100)
        ) {
            // f = Σr²/Σ|r| is the |r|-weighted mean of the magnitudes, so it
            // must lie within [min|r|, max|r|] (for a not-all-zero row) and
            // satisfy the defining identity f·‖r‖₁ = ‖r‖₂².
            let f = f64::from(drive_scale(&r));
            let l1 = l1_norm(&r);
            prop_assert!((f * l1 - l2_norm_sq(&r)).abs() <= 1e-4 * (1.0 + l2_norm_sq(&r)));
            if l1 > 0.0 {
                let lo = r.iter().map(|&x| f64::from(x).abs()).fold(f64::INFINITY, f64::min);
                let hi = r.iter().map(|&x| f64::from(x).abs()).fold(0.0, f64::max);
                prop_assert!(f >= lo - 1e-6 && f <= hi + 1e-6, "f={f} outside [{lo}, {hi}]");
            }
        }

        #[test]
        fn std_dev_nonnegative_and_bounded(
            xs in proptest::collection::vec(-100.0f32..100.0, 0..200)
        ) {
            let s = std_dev(&xs);
            prop_assert!(s >= 0.0);
            // σ cannot exceed half the range for bounded data.
            prop_assert!(s <= 100.0 + 1e-3);
        }
    }
}
