//! Stochastic quantization (paper §3.1, "Stochastic Quantization (SQ)").
//!
//! After clipping the coordinate to `[-L, L]` with `L = 2.5σ` (following
//! TernGrad), the head encodes `+1` with probability `p₊ = (L+v)/2L` and `−1`
//! otherwise; heads decode into `{−L, +L}`. For unclipped coordinates the
//! expectation of the decoded value equals the original — the estimator is
//! **unbiased**, which is what keeps SGD convergent at moderate trim rates
//! where the biased sign-magnitude scheme diverges.
//!
//! Unlike the sign-based schemes, the stochastic head is *not* a bit of the
//! IEEE representation, so exact reconstruction requires the full 32-bit
//! float in the tail: SQ pays one bit of overhead per coordinate
//! (33 vs 32). The randomness is drawn from the shared seed so encoding is
//! reproducible (§5.4), but decoding needs no randomness at all.

use crate::bitpack::BitBuf;
use crate::scheme::{
    bits_f32, f32_bits, DecodeError, EncodedRow, PartialRow, RowMeta, SchemeId, TrimmableScheme,
};
use crate::stats::{clip, std_dev};
use trimgrad_hadamard::prng::Xoshiro256StarStar;

/// Stochastic quantization with clipping range `L = multiplier · σ`.
#[derive(Debug, Clone, Copy)]
pub struct StochasticQuantization {
    /// `L = multiplier · σ`; the paper (and TernGrad) use 2.5.
    pub multiplier: f32,
}

impl Default for StochasticQuantization {
    fn default() -> Self {
        Self { multiplier: 2.5 }
    }
}

const PART_BITS: [u32; 2] = [1, 32];

impl TrimmableScheme for StochasticQuantization {
    fn id(&self) -> SchemeId {
        SchemeId::Stochastic
    }

    fn part_bits(&self) -> &'static [u32] {
        &PART_BITS
    }

    fn encode(&self, row: &[f32], seed: u64) -> EncodedRow {
        let l = self.multiplier * std_dev(row);
        let mut rng = Xoshiro256StarStar::new(seed);
        // One PRNG draw per coordinate, in order, buffered up front: the
        // generator's state update is a serial dependency chain, so running
        // it tight and letting the clip/divide/compare work pipeline over
        // the buffer is much faster than interleaving them. The draw
        // sequence (and thus the head stream) is identical to the scalar
        // path because the draws don't depend on the data.
        // trimlint: allow(hot-path-alloc) -- one draw buffer per row, amortized
        let mut draws = Vec::with_capacity(row.len());
        for _ in 0..row.len() {
            draws.push(rng.next_f32());
        }
        let heads = crate::kernels::pack_bits_zip(row, &draws, |v, draw| {
            // p₊ = (L + clip(v)) / 2L; a zero range (constant row) degenerates
            // to a fair coin, which decodes to ±0 = 0 anyway.
            let p_plus = if l > 0.0 {
                (l + clip(v, l)) / (2.0 * l)
            } else {
                0.5
            };
            // Head bit 1 encodes −L (mirroring the IEEE "1 = negative" convention).
            !(draw < p_plus)
        });
        let tails = crate::kernels::pack_f32_tails(row);
        EncodedRow {
            scheme: self.id(),
            n: row.len(),
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: l,
            },
        }
    }

    fn encode_scalar(&self, row: &[f32], seed: u64) -> EncodedRow {
        let l = self.multiplier * std_dev(row);
        let mut rng = Xoshiro256StarStar::new(seed);
        let mut heads = BitBuf::with_capacity(row.len());
        let mut tails = BitBuf::with_capacity(row.len() * 32);
        for &v in row {
            let p_plus = if l > 0.0 {
                (l + clip(v, l)) / (2.0 * l)
            } else {
                0.5
            };
            let plus = rng.next_f32() < p_plus;
            heads.push_bits(u64::from(!plus), 1);
            tails.push_bits(u64::from(f32_bits(v)), 32);
        }
        EncodedRow {
            scheme: self.id(),
            n: row.len(),
            parts: vec![heads, tails],
            meta: RowMeta {
                original_len: row.len(),
                scale: l,
            },
        }
    }

    fn decode(
        &self,
        row: &PartialRow<'_>,
        meta: &RowMeta,
        _seed: u64,
    ) -> Result<Vec<f32>, DecodeError> {
        row.validate(&PART_BITS)?;
        if meta.original_len != row.n {
            return Err(DecodeError::BadOriginalLen {
                n: row.n,
                original_len: meta.original_len,
            });
        }
        let l = meta.scale;
        let mut out = Vec::with_capacity(row.n);
        for i in 0..row.n {
            out.push(match row.avail_depth(i) {
                0 => 0.0,
                1 => {
                    if row.parts[0].get(i, 1) == 1 {
                        -l
                    } else {
                        l
                    }
                }
                _ => bits_f32(row.parts[1].get(i, 32) as u32),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn untrimmed_is_bit_exact() {
        let s = StochasticQuantization::default();
        let r = vec![0.25, -3.5, 1.0e-4, 0.0, -0.0, 99.0];
        let enc = s.encode(&r, 7);
        let dec = s.decode(&enc.full_view(), &enc.meta, 7).unwrap();
        for (d, v) in dec.iter().zip(&r) {
            assert_eq!(d.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn one_bit_overhead() {
        let s = StochasticQuantization::default();
        assert_eq!(s.bits_per_coord(), 33);
        let enc = s.encode(&[1.0, 2.0, 3.0], 0);
        assert_eq!(enc.total_bits(), 3 * 33);
    }

    #[test]
    fn scale_is_2_5_sigma() {
        let s = StochasticQuantization::default();
        let r = vec![1.0f32, -1.0, 1.0, -1.0];
        let enc = s.encode(&r, 0);
        assert!((enc.meta.scale - 2.5).abs() < 1e-6); // σ = 1
    }

    #[test]
    fn heads_only_values_are_plus_minus_l() {
        let s = StochasticQuantization::default();
        let r: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) / 10.0).collect();
        let enc = s.encode(&r, 3);
        let l = enc.meta.scale;
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 3).unwrap();
        for d in dec {
            assert!(d == l || d == -l, "{d} not ±{l}");
        }
    }

    #[test]
    fn encoding_is_deterministic_per_seed() {
        let s = StochasticQuantization::default();
        let r: Vec<f32> = (0..128).map(|i| ((i * 13) % 31) as f32 - 15.0).collect();
        let a = s.encode(&r, 42);
        let b = s.encode(&r, 42);
        assert_eq!(a.parts[0], b.parts[0]);
        let c = s.encode(&r, 43);
        assert_ne!(a.parts[0], c.parts[0], "different seeds should differ");
    }

    #[test]
    fn head_only_estimate_is_unbiased() {
        // Average many independent stochastic encodings of the same row; the
        // head-only decode must converge on the clipped coordinates.
        let s = StochasticQuantization::default();
        let r = vec![0.8f32, -0.4, 0.0, 1.2, -1.0, 0.3, -0.7, 0.5];
        let trials = 4000;
        let mut acc = vec![0.0f64; r.len()];
        for t in 0..trials {
            let enc = s.encode(&r, t);
            let dec = s.decode(&enc.trimmed_view(1), &enc.meta, t).unwrap();
            for (a, d) in acc.iter_mut().zip(&dec) {
                *a += f64::from(*d);
            }
        }
        let l = s.multiplier * crate::stats::std_dev(&r);
        for (a, &v) in acc.iter().zip(&r) {
            let mean = a / (trials as f64);
            // Standard error of the mean is L/sqrt(trials) ≈ 0.03.
            assert!(
                (mean - f64::from(v)).abs() < 4.0 * f64::from(l) / (trials as f64).sqrt(),
                "coordinate {v}: mean {mean}"
            );
        }
    }

    #[test]
    fn constant_row_degenerates_gracefully() {
        let s = StochasticQuantization::default();
        let r = vec![5.0f32; 16]; // σ = 0 → L = 0
        let enc = s.encode(&r, 1);
        assert_eq!(enc.meta.scale, 0.0);
        let dec = s.decode(&enc.trimmed_view(1), &enc.meta, 1).unwrap();
        for d in dec {
            assert_eq!(d.abs(), 0.0);
        }
        // Full precision still exact.
        let dec = s.decode(&enc.full_view(), &enc.meta, 1).unwrap();
        assert_eq!(dec, r);
    }

    #[test]
    fn empty_row() {
        let s = StochasticQuantization::default();
        let enc = s.encode(&[], 0);
        assert!(s.decode(&enc.full_view(), &enc.meta, 0).unwrap().is_empty());
    }

    proptest! {
        #[test]
        fn roundtrip_exact(
            r in proptest::collection::vec(-1.0e5f32..1.0e5, 0..100),
            seed in any::<u64>()
        ) {
            let s = StochasticQuantization::default();
            let enc = s.encode(&r, seed);
            let dec = s.decode(&enc.full_view(), &enc.meta, seed).unwrap();
            for (d, v) in dec.iter().zip(&r) {
                prop_assert_eq!(d.to_bits(), v.to_bits());
            }
        }

        #[test]
        fn extreme_coordinates_get_deterministic_heads(
            mag in 100.0f32..1000.0
        ) {
            // A coordinate far beyond +L must always encode head=+1.
            let s = StochasticQuantization::default();
            let mut r = vec![0.01f32; 32];
            r[0] = mag; // dominates σ but still > 2.5σ? Ensure: σ≈mag/√32·… check via clip
            let enc = s.encode(&r, 9);
            let l = enc.meta.scale;
            if mag > l {
                // p₊ = 1 exactly after clipping.
                prop_assert_eq!(enc.parts[0].get_bits(0, 1), 0); // head bit 0 = +L
            }
        }
    }
}
