//! Adversarial property tests for `BitBuf` bulk operations and the fused
//! `BitPacker` writer, concentrating on the corners the fused encode kernels
//! hit constantly: non-byte-aligned offsets, non-multiple-of-64 tails, and
//! reconstruction from wire bytes.

use proptest::prelude::*;
use trimgrad_quant::bitpack::{pack_signs, BitBuf, BitPacker};

/// Builds a buffer from explicit bits, the slow trusted way.
fn buf_from_bits(bits: &[bool]) -> BitBuf {
    let mut b = BitBuf::new();
    for &bit in bits {
        b.push_bit(bit);
    }
    b
}

proptest! {
    /// `BitPacker` must be a drop-in replacement for sequential `push_bits`:
    /// same bytes, same length, for any field sequence (including 64-bit
    /// fields that straddle the accumulator and odd tail widths).
    #[test]
    fn bitpacker_is_byte_identical_to_push_bits(
        fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..200)
    ) {
        let mut reference = BitBuf::new();
        let mut packer = BitPacker::with_capacity(0);
        for &(v, w) in &fields {
            let masked = if w == 64 { v } else { v & ((1u64 << w) - 1) };
            reference.push_bits(masked, w);
            packer.push(masked, w);
        }
        let packed = packer.finish();
        prop_assert_eq!(packed.len(), reference.len());
        prop_assert_eq!(packed.as_bytes(), reference.as_bytes());
    }

    /// `pack_signs` agrees with per-coordinate `push_bit` for every length,
    /// including negative zero and non-finite values (raw u32 bit patterns
    /// cover NaN, infinities, denormals, and -0.0).
    #[test]
    fn pack_signs_matches_reference(
        patterns in proptest::collection::vec(any::<u32>(), 0..200)
    ) {
        let values: Vec<f32> = patterns.iter().map(|&b| f32::from_bits(b)).collect();
        let mut reference = BitBuf::new();
        for &v in &values {
            reference.push_bit(v.is_sign_negative());
        }
        prop_assert_eq!(pack_signs(&values), reference);
    }

    /// `copy_bits_to` at arbitrary (mostly unaligned) offsets produces the
    /// same bytes as the allocating `slice`, and `write_bits_from_bytes`
    /// round-trips them back — across byte-aligned and shifted source/dest
    /// combinations.
    #[test]
    fn bulk_copy_roundtrips_at_unaligned_offsets(
        bits in proptest::collection::vec(any::<bool>(), 1..600),
        off_frac in 0.0f64..=1.0,
        len_frac in 0.0f64..=1.0,
        dst_off_frac in 0.0f64..=1.0,
    ) {
        let buf = buf_from_bits(&bits);
        let off = ((bits.len() as f64) * off_frac) as usize;
        let len = (((bits.len() - off) as f64) * len_frac) as usize;
        let mut wire = vec![0u8; len.div_ceil(8)];
        buf.copy_bits_to(off, len, &mut wire);
        let sliced = buf.slice(off, len);
        prop_assert_eq!(&wire[..], sliced.as_bytes());

        // Land the wire bytes at an unrelated (unaligned) offset of a
        // second buffer and check bit-for-bit.
        let dst_len = len + 64;
        let dst_off = (((dst_len - len) as f64) * dst_off_frac) as usize;
        let mut dst = BitBuf::zeroed(dst_len);
        dst.write_bits_from_bytes(dst_off, &wire, len);
        for i in 0..len {
            prop_assert_eq!(dst.get_bit(dst_off + i), bits[off + i], "bit {}", i);
        }
        // Surrounding bits stay zero.
        for i in 0..dst_off {
            prop_assert!(!dst.get_bit(i));
        }
        for i in dst_off + len..dst_len {
            prop_assert!(!dst.get_bit(i));
        }
    }

    /// Non-multiple-of-64 tails: appending after `from_bytes` must behave
    /// exactly like appending to the buffer the bytes came from, even when
    /// the wire handed us an oversized vector or dirty slack bits.
    #[test]
    fn from_bytes_normalizes_before_append(
        bits in proptest::collection::vec(any::<bool>(), 0..200),
        extra_bytes in proptest::collection::vec(any::<u8>(), 0..4),
        slack_garbage in any::<u8>(),
        appended in proptest::collection::vec(any::<bool>(), 1..80),
    ) {
        let clean = buf_from_bits(&bits);
        // Adversarial wire bytes: dirty slack in the final byte plus
        // trailing surplus bytes.
        let mut dirty = clean.as_bytes().to_vec();
        if !bits.len().is_multiple_of(8) {
            if let Some(last) = dirty.last_mut() {
                *last |= slack_garbage << (bits.len() % 8);
            }
        }
        dirty.extend_from_slice(&extra_bytes);
        let mut rebuilt = BitBuf::from_bytes(dirty, bits.len());
        prop_assert_eq!(&rebuilt, &clean);

        let mut reference = clean;
        for &b in &appended {
            reference.push_bit(b);
            rebuilt.push_bit(b);
        }
        prop_assert_eq!(rebuilt, reference);
    }

    /// `extend` after `from_bytes` (the reassembly path) matches pushing the
    /// same bits sequentially.
    #[test]
    fn extend_onto_reconstructed_buffer(
        head_bits in proptest::collection::vec(any::<bool>(), 0..100),
        tail_bits in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let head = buf_from_bits(&head_bits);
        let tail = buf_from_bits(&tail_bits);
        let mut rebuilt = BitBuf::from_bytes(head.as_bytes().to_vec(), head.len());
        rebuilt.extend(&tail);
        let mut all = head_bits.clone();
        all.extend_from_slice(&tail_bits);
        prop_assert_eq!(rebuilt, buf_from_bits(&all));
    }
}
