//! Bit-identity golden tests: the fused word-at-a-time encode kernels must
//! produce output byte-for-byte equal to the retained scalar reference
//! (`TrimmableScheme::encode_scalar`) for every scheme and the row lengths
//! the wire layer actually uses — 1 (degenerate), 64 (one packer word),
//! 4095 (pads to 4096, odd tail), and 32768 (the paper's row size).
//!
//! The matching thread-width pinning (pool widths 1 and 4) lives in
//! `crates/collective/tests/encode_golden_widths.rs`, where the pool is an
//! explicit argument.

use trimgrad_hadamard::prng::Xoshiro256StarStar;
use trimgrad_quant::scheme::EncodedRow;
use trimgrad_quant::{scheme_for, SchemeId};

fn row(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n)
        .map(|i| {
            // Mix magnitudes and exact zeros so every IEEE field pattern
            // (sign, exponent spread, zero mantissa) appears.
            match i % 7 {
                0 => 0.0,
                1 => -0.0,
                _ => rng.next_f32_range(-1.0, 1.0) * 10f32.powi((i % 9) as i32 - 4),
            }
        })
        .collect()
}

fn assert_rows_identical(fast: &EncodedRow, reference: &EncodedRow, ctx: &str) {
    assert_eq!(fast.scheme, reference.scheme, "{ctx}: scheme");
    assert_eq!(fast.n, reference.n, "{ctx}: n");
    assert_eq!(
        fast.meta.original_len, reference.meta.original_len,
        "{ctx}: original_len"
    );
    assert_eq!(
        fast.meta.scale.to_bits(),
        reference.meta.scale.to_bits(),
        "{ctx}: scale bits"
    );
    assert_eq!(fast.parts.len(), reference.parts.len(), "{ctx}: part count");
    for (k, (f, r)) in fast.parts.iter().zip(&reference.parts).enumerate() {
        assert_eq!(f.len(), r.len(), "{ctx}: part {k} bit length");
        assert_eq!(f.as_bytes(), r.as_bytes(), "{ctx}: part {k} bytes");
    }
}

#[test]
fn fused_encode_matches_scalar_reference_byte_for_byte() {
    for scheme_id in SchemeId::ALL {
        let scheme = scheme_for(scheme_id);
        for n in [1usize, 64, 4095, 32768] {
            let data = row(n, 0xBEEF ^ n as u64);
            for seed in [0u64, 42, u64::MAX] {
                let fast = scheme.encode(&data, seed);
                let reference = scheme.encode_scalar(&data, seed);
                assert_rows_identical(&fast, &reference, &format!("{scheme_id} n={n} seed={seed}"));
            }
        }
    }
}

#[test]
fn fused_encode_matches_scalar_on_empty_rows() {
    for scheme_id in SchemeId::ALL {
        let scheme = scheme_for(scheme_id);
        let fast = scheme.encode(&[], 7);
        let reference = scheme.encode_scalar(&[], 7);
        assert_rows_identical(&fast, &reference, &format!("{scheme_id} empty"));
    }
}

#[test]
fn fused_encode_matches_scalar_on_adversarial_values() {
    // Denormal and extreme-but-finite patterns must pack identically — the
    // kernels only move bits. (Non-finite inputs are outside the scheme
    // contract: the stochastic schemes derive probability ranges from the
    // data, and NaN ranges panic identically on both paths.)
    let data = vec![
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        1e-42,
        -1e-42,
        1e18,
        -1e18,
        0.0,
        -0.0,
        1.0,
        -1.0,
    ];
    for scheme_id in SchemeId::ALL {
        let scheme = scheme_for(scheme_id);
        let fast = scheme.encode(&data, 3);
        let reference = scheme.encode_scalar(&data, 3);
        assert_rows_identical(&fast, &reference, &format!("{scheme_id} adversarial"));
    }
}
