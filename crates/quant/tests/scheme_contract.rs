//! The `TrimmableScheme` contract, enforced across every scheme with one
//! generic property suite: exactness untrimmed, graceful degradation under
//! any prefix-closed availability, determinism, and monotone error in depth.

use proptest::prelude::*;
use trimgrad_hadamard::prng::Xoshiro256StarStar;
use trimgrad_quant::error::nmse;
use trimgrad_quant::{scheme_for, SchemeId};

fn row(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..len).map(|_| rng.next_f32_range(-5.0, 5.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Full-view decode reproduces the row (bit-exactly for scalar schemes,
    /// within rotation rounding for RHT schemes).
    #[test]
    fn untrimmed_decode_is_faithful(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..600,
        seed in any::<u64>()
    ) {
        let id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(id);
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let dec = scheme.decode(&enc.full_view(), &enc.meta, seed).expect("valid");
        prop_assert_eq!(dec.len(), len);
        match id {
            SchemeId::RhtOneBit | SchemeId::MultiLevelRht => {
                for (d, v) in dec.iter().zip(&data) {
                    prop_assert!((d - v).abs() <= 1e-3 + 1e-4 * v.abs());
                }
            }
            _ => {
                for (d, v) in dec.iter().zip(&data) {
                    prop_assert_eq!(d.to_bits(), v.to_bits());
                }
            }
        }
    }

    /// Any per-coordinate prefix-closed availability decodes without panic,
    /// with finite values and the right length.
    #[test]
    fn arbitrary_availability_never_panics(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..400,
        seed in any::<u64>(),
        fates in proptest::collection::vec(0usize..=3, 1..50)
    ) {
        let id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(id);
        let n_parts = scheme.part_bits().len();
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let depths: Vec<usize> = (0..enc.n)
            .map(|i| fates[i % fates.len()].min(n_parts))
            .collect();
        let dec = scheme
            .decode(&enc.view_with_depths(&depths), &enc.meta, seed)
            .expect("prefix-closed view must decode");
        prop_assert_eq!(dec.len(), len);
        for d in dec {
            prop_assert!(d.is_finite());
        }
    }

    /// Determinism: encoding and decoding are pure functions of their
    /// arguments.
    #[test]
    fn encode_decode_deterministic(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..300,
        seed in any::<u64>()
    ) {
        let id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(id);
        let data = row(len, seed);
        let a = scheme.encode(&data, seed);
        let b = scheme.encode(&data, seed);
        prop_assert_eq!(&a.parts, &b.parts);
        prop_assert_eq!(a.meta.scale.to_bits(), b.meta.scale.to_bits());
        let da = scheme.decode(&a.trimmed_view(1), &a.meta, seed).expect("valid");
        let db = scheme.decode(&b.trimmed_view(1), &b.meta, seed).expect("valid");
        prop_assert_eq!(da, db);
    }

    /// More surviving parts never increase the reconstruction error (checked
    /// on uniform trims, where the claim is exact rather than statistical).
    #[test]
    fn error_is_monotone_in_depth(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 8usize..400,
        seed in any::<u64>()
    ) {
        let id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(id);
        let n_parts = scheme.part_bits().len();
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let mut last = f64::INFINITY;
        for depth in 1..=n_parts {
            let dec = scheme
                .decode(&enc.trimmed_view(depth), &enc.meta, seed)
                .expect("valid");
            let e = nmse(&dec, &data);
            prop_assert!(
                e <= last + 1e-6,
                "{id}: depth {depth} error {e} worse than {last}"
            );
            last = e;
        }
    }
}
