//! Dependency-free HTML + inline-SVG fleet dashboard.
//!
//! [`render_dashboard`] turns a [`FleetReport`](crate::FleetReport) into a
//! single self-contained HTML page: one sparkline row per tenant (p99 step
//! time, goodput, trim fraction), a fabric queue-depth heatmap strip, and
//! the SLO verdict table with a ready-to-paste `trimgrad-trace query`
//! drill-down command for each tenant's worst flow. No JavaScript, no
//! external assets — the page is a pure function of the report, so fixed
//! seeds render byte-identical bytes at any thread width.
//!
//! [`check_dashboard`] is the well-formedness gate CI runs against the
//! rendered page (balanced tags, at least one sparkline per tenant, the
//! verdict table present).

use crate::{FleetReport, SloSpec, Verdict};
use std::fmt::Write as _;

const SPARK_W: f64 = 220.0;
const SPARK_H: f64 = 36.0;

/// Formats a float with enough digits to be stable but readable.
fn fnum(v: f64) -> String {
    // trimlint: allow(float-eq) -- exact-zero display sentinel, not a tolerance comparison
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Human-ish duration from nanoseconds.
fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{}s", fnum(ns / 1e9))
    } else if ns >= 1e6 {
        format!("{}ms", fnum(ns / 1e6))
    } else if ns >= 1e3 {
        format!("{}us", fnum(ns / 1e3))
    } else {
        format!("{}ns", fnum(ns))
    }
}

/// Bits-ish throughput label from bytes/second.
fn fmt_bps(bps: f64) -> String {
    if bps >= 1e9 {
        format!("{}GB/s", fnum(bps / 1e9))
    } else if bps >= 1e6 {
        format!("{}MB/s", fnum(bps / 1e6))
    } else if bps >= 1e3 {
        format!("{}KB/s", fnum(bps / 1e3))
    } else {
        format!("{}B/s", fnum(bps))
    }
}

/// Escapes the five HTML-special characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders one `(t, value)` series as an inline-SVG polyline sparkline.
/// Always emits a `<svg class="spark">` element, even for empty series, so
/// every tenant row carries its sparklines through churn.
fn sparkline(series: &[(u64, f64)], stroke: &str, threshold: Option<f64>) -> String {
    let mut svg = format!(
        "<svg class=\"spark\" width=\"{SPARK_W:.0}\" height=\"{SPARK_H:.0}\" \
         viewBox=\"0 0 {SPARK_W:.0} {SPARK_H:.0}\">"
    );
    if !series.is_empty() {
        let (t0, t1) = (series[0].0, series[series.len() - 1].0);
        let vmax = series
            .iter()
            .map(|&(_, v)| v)
            .fold(threshold.unwrap_or(0.0), f64::max)
            .max(1e-9);
        let x = |t: u64| {
            if t1 == t0 {
                SPARK_W / 2.0
            } else {
                (t - t0) as f64 / (t1 - t0) as f64 * (SPARK_W - 4.0) + 2.0
            }
        };
        let y = |v: f64| SPARK_H - 3.0 - (v / vmax) * (SPARK_H - 6.0);
        if let Some(th) = threshold {
            let ty = y(th);
            let _ = write!(
                svg,
                "<line class=\"thresh\" x1=\"0\" y1=\"{ty:.1}\" x2=\"{SPARK_W:.0}\" \
                 y2=\"{ty:.1}\" stroke=\"#d33\" stroke-dasharray=\"3,2\"></line>"
            );
        }
        let mut pts = String::new();
        for &(t, v) in series {
            let _ = write!(pts, "{:.1},{:.1} ", x(t), y(v));
        }
        let _ = write!(
            svg,
            "<polyline fill=\"none\" stroke=\"{stroke}\" stroke-width=\"1.5\" \
             points=\"{}\"></polyline>",
            pts.trim_end()
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders the fabric queue-depth strip: one rect per sampling window,
/// shaded by the window's p90 queue depth relative to the series maximum.
fn heatmap(windows: &[(u64, f64)]) -> String {
    let mut svg =
        String::from("<svg class=\"heatmap\" width=\"880\" height=\"24\" viewBox=\"0 0 880 24\">");
    if !windows.is_empty() {
        let vmax = windows.iter().map(|&(_, v)| v).fold(1e-9, f64::max);
        let w = 880.0 / windows.len() as f64;
        for (i, &(at, v)) in windows.iter().enumerate() {
            // Shade 0 (idle, near-white) to 9 (saturated).
            let shade = ((v / vmax) * 9.0).round() as u32;
            let _ = write!(
                svg,
                "<rect x=\"{:.1}\" y=\"0\" width=\"{:.1}\" height=\"24\" \
                 class=\"q{shade}\"><title>t={}us p90={}B</title></rect>",
                i as f64 * w,
                w,
                at / 1_000,
                fnum(v)
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Renders the full dashboard page for one fleet report.
#[must_use]
pub fn render_dashboard(report: &FleetReport, spec: &SloSpec, title: &str) -> String {
    let mut html = String::with_capacity(1 << 16);
    html.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    let _ = write!(html, "<title>{}</title>", escape(title));
    html.push_str(
        "<style>\n\
         body{font-family:monospace;margin:24px;background:#fafafa;color:#222}\n\
         h1{font-size:18px}h2{font-size:15px;margin-top:28px}\n\
         table{border-collapse:collapse;margin-top:8px}\n\
         td,th{border:1px solid #bbb;padding:4px 10px;text-align:left;font-size:13px}\n\
         th{background:#eee}\n\
         .spark{background:#fff;border:1px solid #ddd;margin:2px 6px 2px 0;vertical-align:middle}\n\
         .heatmap{border:1px solid #ddd;background:#fff}\n\
         .verdict-pass{color:#0a0;font-weight:bold}\n\
         .verdict-warn{color:#b80;font-weight:bold}\n\
         .verdict-fail{color:#c00;font-weight:bold}\n\
         .drill{font-size:12px;color:#555}\n\
         .q0{fill:#f7fbff}.q1{fill:#deebf7}.q2{fill:#c6dbef}.q3{fill:#9ecae1}\n\
         .q4{fill:#6baed6}.q5{fill:#4292c6}.q6{fill:#2171b5}.q7{fill:#08519c}\n\
         .q8{fill:#08306b}.q9{fill:#041f4a}\n\
         </style></head><body>\n",
    );
    let _ = write!(html, "<h1>{}</h1>", escape(title));
    let _ = writeln!(
        html,
        "<p>SLO: p99 step &le; {}; goodput &ge; {}; trim fraction &le; {}; \
         error budget {}% of active windows. Trim fairness (Jain) across \
         tenants: <b>{}</b>.</p>",
        fmt_ns(spec.p99_step_time_ns as f64),
        fmt_bps(spec.min_goodput_bps),
        fnum(spec.max_trim_fraction),
        fnum(spec.error_budget * 100.0),
        fnum(report.trim_fairness)
    );

    html.push_str("<h2>Fabric queue depth (p90 per window)</h2>\n");
    html.push_str(&heatmap(&report.queue_windows));

    html.push_str("<h2>Per-tenant series</h2>\n<table id=\"tenant-series\">");
    html.push_str(
        "<tr><th>tenant</th><th>p99 step time</th><th>goodput</th><th>trim fraction</th></tr>\n",
    );
    for t in &report.tenants {
        let p99: Vec<(u64, f64)> = t.windows.iter().map(|w| (w.at_ns, w.p99_step_ns)).collect();
        let goodput: Vec<(u64, f64)> = t.windows.iter().map(|w| (w.at_ns, w.goodput_bps)).collect();
        let trim: Vec<(u64, f64)> = t
            .windows
            .iter()
            .map(|w| (w.at_ns, w.trim_fraction))
            .collect();
        let _ = writeln!(
            html,
            "<tr><td>{}<br><span class=\"drill\">{}</span></td><td>{}</td><td>{}</td>\
             <td>{}</td></tr>",
            escape(&t.spec.scope),
            escape(&t.spec.label),
            sparkline(&p99, "#24f", Some(spec.p99_step_time_ns as f64)),
            sparkline(&goodput, "#082", Some(spec.min_goodput_bps)),
            sparkline(&trim, "#c60", Some(spec.max_trim_fraction)),
        );
    }
    html.push_str("</table>\n");

    html.push_str("<h2>SLO verdicts</h2>\n<table id=\"slo-table\">");
    html.push_str(
        "<tr><th>tenant</th><th>verdict</th><th>p99 step</th><th>mean goodput</th>\
         <th>trim frac</th><th>trim bytes</th><th>burn</th><th>recent burn</th>\
         <th>worst flow drill-down</th></tr>\n",
    );
    for t in &report.tenants {
        let class = match t.verdict {
            Verdict::Pass => "verdict-pass",
            Verdict::Warn => "verdict-warn",
            Verdict::Fail => "verdict-fail",
        };
        // Window the drill-down one sampling interval around the worst p99.
        let step = t
            .windows
            .first()
            .map_or(1_000_000, |w| w.at_ns.max(1_000_000));
        let t1 = t.worst_window_at_ns;
        let t0 = t1.saturating_sub(step);
        let drill = format!(
            "trimgrad-trace query results/fleet.trace.bin --follow {:#x}:0 --tenant {} --between {t0} {t1}",
            t.worst_flow, t.spec.scope
        );
        let _ = writeln!(
            html,
            "<tr><td>{}</td><td class=\"{class}\">{}</td><td>{}</td><td>{}</td>\
             <td>{}</td><td>{}</td><td>{}</td><td>{}</td>\
             <td><code class=\"drill\">{}</code></td></tr>",
            escape(&t.spec.scope),
            t.verdict.name(),
            fmt_ns(t.p99_step_ns),
            fmt_bps(t.mean_goodput_bps),
            fnum(t.trim_fraction),
            t.trim_bytes,
            fnum(t.burn_rate),
            fnum(t.recent_burn_rate),
            escape(&drill),
        );
    }
    html.push_str("</table>\n</body></html>\n");
    html
}

/// A failed [`check_dashboard`] assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DashboardError(pub String);

impl std::fmt::Display for DashboardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Lists every `<tag` / `</tag>` token in document order, ignoring
/// attribute text. Void elements (`<meta>`, `<br>`) are skipped.
fn tag_stream(html: &str) -> Vec<(bool, String)> {
    let mut tags = Vec::new();
    let bytes = html.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'<' {
            i += 1;
            continue;
        }
        let rest = &html[i + 1..];
        if rest.starts_with('!') {
            // doctype / comment: skip to '>'
            i += 1 + rest.find('>').map_or(rest.len(), |p| p + 1);
            continue;
        }
        let closing = rest.starts_with('/');
        let name_start = if closing { 1 } else { 0 };
        let name: String = rest[name_start..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        let end = rest.find('>').map_or(rest.len(), |p| p + 1);
        let self_closed = rest[..end.saturating_sub(1)].ends_with('/');
        i += 1 + end;
        if name.is_empty() {
            continue;
        }
        if matches!(
            name.as_str(),
            "meta" | "br" | "hr" | "img" | "input" | "link"
        ) || self_closed
        {
            continue;
        }
        tags.push((closing, name));
    }
    tags
}

/// Verifies a rendered dashboard is well-formed:
///
/// * every open tag (SVG elements included) has a matching close tag in
///   LIFO order;
/// * at least one `class="spark"` sparkline appears per expected tenant;
/// * the SLO verdict table (`id="slo-table"`) is present.
///
/// This is what the `dashboard-smoke` CI job asserts after rendering.
pub fn check_dashboard(html: &str, expected_tenants: usize) -> Result<(), DashboardError> {
    let mut stack: Vec<String> = Vec::new();
    for (closing, name) in tag_stream(html) {
        if closing {
            match stack.pop() {
                Some(open) if open == name => {}
                Some(open) => {
                    return Err(DashboardError(format!(
                        "mismatched close tag </{name}> while <{open}> is open"
                    )))
                }
                None => {
                    return Err(DashboardError(format!(
                        "close tag </{name}> with nothing open"
                    )))
                }
            }
        } else {
            stack.push(name);
        }
    }
    if let Some(open) = stack.pop() {
        return Err(DashboardError(format!("unclosed tag <{open}>")));
    }
    let sparks = html.matches("class=\"spark\"").count();
    if sparks < expected_tenants {
        return Err(DashboardError(format!(
            "expected at least {expected_tenants} sparklines, found {sparks}"
        )));
    }
    if !html.contains("id=\"slo-table\"") {
        return Err(DashboardError("missing SLO verdict table".to_string()));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate, SloSpec, TenantSpec};
    use trimgrad_telemetry::{Registry, TimeSeries};

    fn sample_report() -> (FleetReport, SloSpec) {
        let reg = Registry::new();
        let t0 = reg.scoped("tenant.job0");
        let t1 = reg.scoped("tenant.job1");
        let mut ts = TimeSeries::new(32);
        for w in 1..=6u64 {
            for t in [&t0, &t1] {
                t.histogram("collective.rank.0.step_time_ns")
                    .record(w * 10_000);
                t.counter("collective.rank.0.bytes_received").add(1_000_000);
                t.counter("collective.rank.0.packets_received").add(50);
            }
            t1.counter("collective.rank.0.trimmed_received").add(40);
            t1.counter("netsim.trim_bytes").add(5_000);
            reg.histogram("netsim.queue.depth_bytes").record(w * 1_000);
            ts.sample(w * 1_000_000, &reg.snapshot());
        }
        let tenants = vec![
            TenantSpec {
                scope: "tenant.job0".into(),
                flow_base: 1 << 32,
                label: "rht depth1".into(),
            },
            TenantSpec {
                scope: "tenant.job1".into(),
                flow_base: 2 << 32,
                label: "sign depth2".into(),
            },
        ];
        let spec = SloSpec::default();
        (evaluate(&ts, &tenants, &spec), spec)
    }

    #[test]
    fn render_passes_its_own_well_formedness_check() {
        let (report, spec) = sample_report();
        let html = render_dashboard(&report, &spec, "fleet test");
        check_dashboard(&html, report.tenants.len()).expect("well-formed");
        assert!(html.contains("id=\"slo-table\""));
        assert!(html.contains("class=\"heatmap\""));
        assert!(html.contains("--follow"));
        assert!(html.contains("--between"));
        // Three sparklines (p99, goodput, trim) per tenant.
        assert_eq!(html.matches("class=\"spark\"").count(), 6);
    }

    #[test]
    fn render_is_deterministic() {
        let (report, spec) = sample_report();
        let a = render_dashboard(&report, &spec, "fleet test");
        let b = render_dashboard(&report, &spec, "fleet test");
        assert_eq!(a, b);
    }

    #[test]
    fn checker_rejects_malformed_pages() {
        let unclosed = "<html><body><svg class=\"spark\"></svg></body>";
        assert!(check_dashboard(unclosed, 0).is_err());
        let crossed = "<html><body><b><i></b></i></body></html>";
        assert!(check_dashboard(crossed, 0).is_err());
        let no_table = "<html><body><svg class=\"spark\"></svg></body></html>";
        let err = check_dashboard(no_table, 1).unwrap_err();
        assert!(err.0.contains("SLO"), "{err}");
        let too_few = render_missing_sparks();
        assert!(check_dashboard(&too_few, 5).is_err());
    }

    fn render_missing_sparks() -> String {
        "<html><body><table id=\"slo-table\"></table>\
         <svg class=\"spark\"></svg></body></html>"
            .to_string()
    }

    #[test]
    fn escape_covers_the_special_characters() {
        assert_eq!(escape("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&#39;");
    }

    #[test]
    fn tag_stream_skips_voids_and_doctype() {
        let tags = tag_stream("<!DOCTYPE html><html><meta charset=\"x\"><br><p>hi</p></html>");
        let names: Vec<String> = tags.iter().map(|(_, n)| n.clone()).collect();
        assert_eq!(names, ["html", "p", "p", "html"]);
    }
}
