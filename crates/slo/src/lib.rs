//! Fleet SLO evaluation over telemetry time series.
//!
//! The paper's claim is end-to-end — trimming buys *time-to-accuracy under
//! congestion* — so judging a multi-tenant fabric takes more than a final
//! snapshot: it takes trajectories. This crate turns the
//! [`trimgrad_telemetry::TimeSeries`] a simulation samples into per-tenant
//! service-level verdicts:
//!
//! * [`SloSpec`] — the targets: p99 step time, minimum goodput, maximum trim
//!   fraction, and an error budget for burn-rate style violation detection;
//! * [`evaluate`] — windowed quantiles from the log2 histograms
//!   (interpolated via [`trimgrad_telemetry::histogram_quantile`]), goodput
//!   and trim-fraction per sampling window, Jain's fairness index over
//!   per-tenant trim bytes, and a burn-rate verdict per tenant;
//! * [`dashboard`] — a dependency-free HTML + inline-SVG renderer
//!   (sparklines, queue-depth heatmap strip, verdict table) plus a
//!   well-formedness checker CI runs against the rendered page.
//!
//! Everything here is a pure function of the series, so two runs with the
//! same seed render byte-identical dashboards at any thread width.

#![forbid(unsafe_code)]

pub mod dashboard;

use trimgrad_telemetry::{histogram_quantile, MetricValue, TimeSeries, TimeSeriesPoint};

/// One tenant to evaluate: where its metrics live and which flows are its.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Registry scope prefix the tenant publishes under (no trailing dot),
    /// e.g. `tenant.job0`.
    pub scope: String,
    /// Base added to the tenant's collective flow ids (`(tenant + 1) << 32`
    /// in the fleet scenario), used to name the worst-p99 flow for trace
    /// drill-downs.
    pub flow_base: u64,
    /// Display label for the dashboard (encoding, trim depth, …).
    pub label: String,
}

/// The service-level objective every tenant is held to.
#[derive(Debug, Clone, Copy)]
pub struct SloSpec {
    /// Target 99th-percentile collective step time, nanoseconds.
    pub p99_step_time_ns: u64,
    /// Minimum acceptable goodput (gradient bytes received per second of
    /// sim time, summed over the tenant's ranks).
    pub min_goodput_bps: f64,
    /// Maximum acceptable fraction of gradient packets arriving trimmed.
    pub max_trim_fraction: f64,
    /// Error budget: the fraction of active windows allowed to violate any
    /// target before the tenant fails (burn rate = violated fraction over
    /// this budget).
    pub error_budget: f64,
    /// Burn-rate threshold over the trailing quarter of active windows at
    /// which a still-within-budget tenant is flagged `Warn`.
    pub warn_burn_rate: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        Self {
            p99_step_time_ns: 50_000_000,
            min_goodput_bps: 1e6,
            max_trim_fraction: 0.5,
            error_budget: 0.1,
            warn_burn_rate: 0.5,
        }
    }
}

/// The verdict of one tenant against the [`SloSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within budget, no concerning recent burn.
    Pass,
    /// Within budget overall, but the trailing windows are burning it fast.
    Warn,
    /// Error budget exhausted.
    Fail,
}

impl Verdict {
    /// Display name (`PASS` / `WARN` / `FAIL`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Pass => "PASS",
            Verdict::Warn => "WARN",
            Verdict::Fail => "FAIL",
        }
    }
}

/// One sampling window of one tenant.
#[derive(Debug, Clone, Copy)]
pub struct WindowEval {
    /// Window end, sim nanoseconds.
    pub at_ns: u64,
    /// Interpolated p99 of the step-time observations inside the window
    /// (0.0 if no step completed).
    pub p99_step_ns: f64,
    /// Gradient bytes received per second of sim time in the window.
    pub goodput_bps: f64,
    /// Trimmed fraction of gradient packets received in the window.
    pub trim_fraction: f64,
    /// Whether any SLO target was violated in this window.
    pub violated: bool,
}

/// Everything [`evaluate`] derives for one tenant.
#[derive(Debug, Clone)]
pub struct TenantSlo {
    /// The spec this report was computed for.
    pub spec: TenantSpec,
    /// Per-window evaluations, active windows only (a window is active when
    /// the tenant received bytes or completed steps in it).
    pub windows: Vec<WindowEval>,
    /// Whole-series interpolated p99 step time, nanoseconds.
    pub p99_step_ns: f64,
    /// Mean goodput over active windows.
    pub mean_goodput_bps: f64,
    /// Whole-series trimmed fraction of received gradient packets.
    pub trim_fraction: f64,
    /// Fabric-side bytes removed from this tenant's packets by trimming.
    pub trim_bytes: u64,
    /// Active windows that violated at least one target.
    pub violating_windows: usize,
    /// Violated fraction over the error budget (≥ 1.0 ⇒ budget exhausted).
    pub burn_rate: f64,
    /// Burn rate over the trailing quarter of active windows.
    pub recent_burn_rate: f64,
    /// The verdict.
    pub verdict: Verdict,
    /// Rank with the worst whole-series p99 step time.
    pub worst_rank: usize,
    /// Flow id of [`TenantSlo::worst_rank`] — the `--follow` target.
    pub worst_flow: u64,
    /// End of the worst (highest p99) violating-or-not window, for
    /// `--between` drill-downs; 0 when the tenant never stepped.
    pub worst_window_at_ns: u64,
}

/// The fleet-level report: every tenant plus cross-tenant fairness.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-tenant evaluations, in input order.
    pub tenants: Vec<TenantSlo>,
    /// Jain's fairness index over per-tenant fabric trim bytes.
    pub trim_fairness: f64,
    /// Per-window fabric queue-depth p90 (from the
    /// `netsim.queue.depth_bytes` histogram deltas) — the heatmap strip.
    pub queue_windows: Vec<(u64, f64)>,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over `xs`.
///
/// Ranges from `1/n` (one tenant takes everything) to `1.0` (perfectly
/// even). An empty or all-zero slice — nobody was trimmed at all — is
/// defined as perfectly fair, `1.0`.
#[must_use]
pub fn jain_index(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    // trimlint: allow(float-eq) -- exact zero means literally nobody was trimmed; a tolerance would misclassify tiny tenants
    if xs.is_empty() || sq == 0.0 {
        1.0
    } else {
        (sum * sum) / (xs.len() as f64 * sq)
    }
}

/// The flow id rank `r` of a ring with flow base `b` sends on (mirrors
/// `RingWorkerApp::flow`).
#[must_use]
pub fn ring_flow_id(flow_base: u64, rank: usize) -> u64 {
    flow_base + 0x5249_0000 + rank as u64
}

/// Sums every histogram delta under `prefix` with leaf name `leaf` inside
/// one point, returning `(count, sum, buckets)`.
fn sum_histograms(p: &TimeSeriesPoint, prefix: &str, leaf: &str) -> (u64, u64, Vec<u64>) {
    let mut count = 0;
    let mut sum = 0;
    let mut buckets = Vec::new();
    for (name, v) in p.values.range(prefix.to_string()..) {
        if !name.starts_with(prefix) {
            break;
        }
        if !name.ends_with(leaf) {
            continue;
        }
        if let MetricValue::Histogram {
            count: c,
            sum: s,
            buckets: b,
        } = v
        {
            count += c;
            sum += s;
            if buckets.len() < b.len() {
                buckets.resize(b.len(), 0);
            }
            for (acc, x) in buckets.iter_mut().zip(b) {
                *acc += x;
            }
        }
    }
    (count, sum, buckets)
}

/// Sums every counter delta under `prefix` with leaf name `leaf` inside one
/// point.
fn sum_counters(p: &TimeSeriesPoint, prefix: &str, leaf: &str) -> u64 {
    let mut total = 0;
    for (name, v) in p.values.range(prefix.to_string()..) {
        if !name.starts_with(prefix) {
            break;
        }
        if !name.ends_with(leaf) {
            continue;
        }
        if let MetricValue::Counter(c) = v {
            total += c;
        }
    }
    total
}

/// Accumulates bucket-wise into `acc` (resizing as needed).
fn add_buckets(acc: &mut Vec<u64>, b: &[u64]) {
    if acc.len() < b.len() {
        acc.resize(b.len(), 0);
    }
    for (a, x) in acc.iter_mut().zip(b) {
        *a += x;
    }
}

/// Evaluates every tenant of a fleet time series against one [`SloSpec`].
///
/// Windows are the sampling intervals of `series`; a tenant's window is
/// *active* when it received gradient bytes or completed collective steps
/// in it, so arrival/departure churn never charges an absent tenant with
/// zero-goodput violations.
#[must_use]
pub fn evaluate(series: &TimeSeries, tenants: &[TenantSpec], spec: &SloSpec) -> FleetReport {
    let points: Vec<&TimeSeriesPoint> = series.points().collect();
    let mut reports = Vec::with_capacity(tenants.len());
    for t in tenants {
        let prefix = format!("{}.", t.scope);
        let rank_prefix = format!("{prefix}collective.rank.");
        let mut windows = Vec::new();
        let mut total_count = 0u64;
        let mut total_buckets: Vec<u64> = Vec::new();
        let mut per_rank: Vec<(u64, Vec<u64>)> = Vec::new();
        let mut total_packets = 0u64;
        let mut total_trimmed_pkts = 0u64;
        let mut trim_bytes = 0u64;
        let mut goodput_sum = 0.0;
        let mut prev_at = 0u64;
        let mut worst = (0.0f64, 0u64); // (p99, window end)
        for p in &points {
            let window_ns = p.at_ns.saturating_sub(prev_at);
            prev_at = p.at_ns;
            let (count, _sum, buckets) = sum_histograms(p, &rank_prefix, ".step_time_ns");
            let bytes = sum_counters(p, &rank_prefix, ".bytes_received");
            let packets = sum_counters(p, &rank_prefix, ".packets_received");
            let trimmed_pkts = sum_counters(p, &rank_prefix, ".trimmed_received");
            trim_bytes += sum_counters(p, &prefix, "netsim.trim_bytes");
            // Per-rank whole-series accumulation for the worst-flow pick.
            for (name, v) in p.values.range(rank_prefix.clone()..) {
                if !name.starts_with(&rank_prefix) {
                    break;
                }
                if !name.ends_with(".step_time_ns") {
                    continue;
                }
                let rank: usize = name[rank_prefix.len()..]
                    .split('.')
                    .next()
                    .and_then(|r| r.parse().ok())
                    .unwrap_or(0);
                if let MetricValue::Histogram {
                    count: c,
                    buckets: b,
                    ..
                } = v
                {
                    if per_rank.len() <= rank {
                        per_rank.resize(rank + 1, (0, Vec::new()));
                    }
                    per_rank[rank].0 += c;
                    add_buckets(&mut per_rank[rank].1, b);
                }
            }
            if count == 0 && bytes == 0 {
                continue; // tenant inactive (not yet arrived, or departed)
            }
            total_count += count;
            add_buckets(&mut total_buckets, &buckets);
            total_packets += packets;
            total_trimmed_pkts += trimmed_pkts;
            let p99 = histogram_quantile(count, &buckets, 0.99);
            let goodput = if window_ns == 0 {
                0.0
            } else {
                bytes as f64 * 1e9 / window_ns as f64
            };
            goodput_sum += goodput;
            let trim_fraction = if packets == 0 {
                0.0
            } else {
                trimmed_pkts as f64 / packets as f64
            };
            let violated = (count > 0 && p99 > spec.p99_step_time_ns as f64)
                || goodput < spec.min_goodput_bps
                || trim_fraction > spec.max_trim_fraction;
            if p99 > worst.0 {
                worst = (p99, p.at_ns);
            }
            windows.push(WindowEval {
                at_ns: p.at_ns,
                p99_step_ns: p99,
                goodput_bps: goodput,
                trim_fraction,
                violated,
            });
        }
        let active = windows.len();
        let violating = windows.iter().filter(|w| w.violated).count();
        let burn = |bad: usize, total: usize| {
            if total == 0 || spec.error_budget <= 0.0 {
                0.0
            } else {
                (bad as f64 / total as f64) / spec.error_budget
            }
        };
        let burn_rate = burn(violating, active);
        let tail = active.div_ceil(4).max(1).min(active);
        let recent_bad = windows[active - tail..]
            .iter()
            .filter(|w| w.violated)
            .count();
        let recent_burn_rate = burn(recent_bad, tail);
        let verdict = if burn_rate >= 1.0 {
            Verdict::Fail
        } else if recent_burn_rate >= spec.warn_burn_rate {
            Verdict::Warn
        } else {
            Verdict::Pass
        };
        let worst_rank = per_rank
            .iter()
            .enumerate()
            .map(|(r, (c, b))| (r, histogram_quantile(*c, b, 0.99)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(0, |(r, _)| r);
        reports.push(TenantSlo {
            spec: t.clone(),
            p99_step_ns: histogram_quantile(total_count, &total_buckets, 0.99),
            mean_goodput_bps: if active == 0 {
                0.0
            } else {
                goodput_sum / active as f64
            },
            trim_fraction: if total_packets == 0 {
                0.0
            } else {
                total_trimmed_pkts as f64 / total_packets as f64
            },
            trim_bytes,
            violating_windows: violating,
            burn_rate,
            recent_burn_rate,
            verdict,
            worst_rank,
            worst_flow: ring_flow_id(t.flow_base, worst_rank),
            worst_window_at_ns: worst.1,
            windows,
        });
    }
    let trim_fairness = jain_index(
        &reports
            .iter()
            .map(|r| r.trim_bytes as f64)
            .collect::<Vec<_>>(),
    );
    let queue_windows = points
        .iter()
        .map(|p| {
            let depth = match p.get("netsim.queue.depth_bytes") {
                Some(MetricValue::Histogram { count, buckets, .. }) => {
                    histogram_quantile(*count, buckets, 0.9)
                }
                _ => 0.0,
            };
            (p.at_ns, depth)
        })
        .collect();
    FleetReport {
        tenants: reports,
        trim_fairness,
        queue_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgrad_telemetry::Registry;

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert_eq!(jain_index(&[5.0, 5.0, 5.0]), 1.0);
        let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12, "{skewed}");
        let mid = jain_index(&[4.0, 1.0]);
        assert!(mid > 0.25 && mid < 1.0);
    }

    #[test]
    fn ring_flow_ids_match_the_collective_convention() {
        assert_eq!(ring_flow_id(0, 3), 0x5249_0000 + 3);
        assert_eq!(ring_flow_id(2 << 32, 0) >> 32, 2);
    }

    /// Builds a two-tenant series: job0 is healthy, job1 has slow steps and
    /// all the trimming.
    fn fleet_series() -> (TimeSeries, Vec<TenantSpec>) {
        let reg = Registry::new();
        let t0 = reg.scoped("tenant.job0");
        let t1 = reg.scoped("tenant.job1");
        let mut ts = TimeSeries::new(64);
        for w in 1..=8u64 {
            for (t, step_ns, bytes) in [(&t0, 1_000u64, 4_000_000u64), (&t1, 80_000, 2_000_000)] {
                t.histogram("collective.rank.0.step_time_ns")
                    .record(step_ns);
                t.histogram("collective.rank.1.step_time_ns")
                    .record(step_ns * 2);
                t.counter("collective.rank.0.bytes_received").add(bytes);
                t.counter("collective.rank.0.packets_received").add(100);
            }
            t1.counter("collective.rank.0.trimmed_received").add(80);
            t1.counter("netsim.trim_bytes").add(10_000);
            ts.sample(w * 1_000_000, &reg.snapshot());
        }
        let tenants = vec![
            TenantSpec {
                scope: "tenant.job0".into(),
                flow_base: 1 << 32,
                label: "job0 rht1".into(),
            },
            TenantSpec {
                scope: "tenant.job1".into(),
                flow_base: 2 << 32,
                label: "job1 sign".into(),
            },
        ];
        (ts, tenants)
    }

    #[test]
    fn evaluate_splits_pass_and_fail_tenants() {
        let (ts, tenants) = fleet_series();
        let spec = SloSpec {
            p99_step_time_ns: 10_000,
            min_goodput_bps: 1e6,
            max_trim_fraction: 0.5,
            error_budget: 0.1,
            warn_burn_rate: 0.5,
        };
        let report = evaluate(&ts, &tenants, &spec);
        assert_eq!(report.tenants.len(), 2);
        let (job0, job1) = (&report.tenants[0], &report.tenants[1]);
        assert_eq!(job0.verdict, Verdict::Pass);
        assert_eq!(job0.violating_windows, 0);
        // job1's steps (80–160 µs) blow the 10 µs target in every window,
        // and 80% of its packets arrive trimmed.
        assert_eq!(job1.verdict, Verdict::Fail);
        assert_eq!(job1.violating_windows, job1.windows.len());
        assert!(job1.burn_rate >= 1.0);
        assert!(job1.p99_step_ns > job0.p99_step_ns);
        assert!(job1.trim_fraction > 0.5);
        // Rank 1 records 2× the step time, so it is the worst flow.
        assert_eq!(job1.worst_rank, 1);
        assert_eq!(job1.worst_flow, ring_flow_id(2 << 32, 1));
        // Only job1 was trimmed: fairness is the 2-tenant minimum, 1/2.
        assert!((report.trim_fairness - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inactive_windows_are_not_charged() {
        let reg = Registry::new();
        let t = reg.scoped("tenant.job0");
        let mut ts = TimeSeries::new(16);
        // Window 1: active and healthy. Windows 2-3: departed (no deltas).
        t.histogram("collective.rank.0.step_time_ns").record(1_000);
        t.counter("collective.rank.0.bytes_received").add(5_000_000);
        t.counter("collective.rank.0.packets_received").add(10);
        ts.sample(1_000_000, &reg.snapshot());
        ts.sample(2_000_000, &reg.snapshot());
        ts.sample(3_000_000, &reg.snapshot());
        let tenants = [TenantSpec {
            scope: "tenant.job0".into(),
            flow_base: 1 << 32,
            label: "job0".into(),
        }];
        let report = evaluate(&ts, &tenants, &SloSpec::default());
        assert_eq!(report.tenants[0].windows.len(), 1, "only the live window");
        assert_eq!(report.tenants[0].verdict, Verdict::Pass);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let build = || {
            let (ts, tenants) = fleet_series();
            let r = evaluate(&ts, &tenants, &SloSpec::default());
            format!("{r:?}")
        };
        assert_eq!(build(), build());
    }
}
