//! Lightweight telemetry for the trimgrad stack.
//!
//! The paper's whole evaluation is a story told through counters: packets
//! trimmed vs. dropped per switch port, gradient parts recovered per row,
//! time-to-baseline-accuracy per scheme. This crate gives every layer of the
//! stack one shared, dependency-free way to emit those numbers:
//!
//! * [`Counter`] — a monotone `u64`, updated with relaxed atomics so the
//!   simulator hot path pays one uncontended atomic add;
//! * [`Gauge`] — a last-value `u64` with a `set_max` high-watermark helper
//!   (queue depths);
//! * [`FloatGauge`] — a last-value `f64` (accuracies, throughputs);
//! * [`Histogram`] — fixed 64-bucket log2 histogram (FCTs, queue depths);
//! * [`Registry`] — a cloneable, thread-safe name → metric table that layers
//!   share by handle;
//! * [`Snapshot`] — an immutable, deterministically ordered capture of a
//!   registry with hand-rolled JSON export, so two runs with the same seed
//!   produce byte-identical snapshots.
//!
//! Naming convention: dot-separated lowercase paths, most-general first,
//! e.g. `netsim.port.2->5.trimmed` or `collective.rank.0.bytes_sent`.
//! Snapshots order keys lexicographically (via `BTreeMap`), which makes
//! JSON output reproducible without any canonicalization pass.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of buckets in a [`Histogram`]: one per possible `log2` of a `u64`,
/// plus a zero bucket folded into index 0.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotone event counter.
///
/// Cloning shares the underlying value (handles are `Arc`-backed), so a
/// hot loop can hold a clone and increment without touching the registry.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for integral quantities (queue bytes, window sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark tracking).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for real-valued quantities (accuracy, seconds).
///
/// Stored as the `f64` bit pattern in an atomic; reads and writes are
/// lossless.
#[derive(Debug, Clone, Default)]
pub struct FloatGauge {
    bits: Arc<AtomicU64>,
}

impl FloatGauge {
    /// A fresh gauge at `0.0`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-size log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts observations `v` with `floor(log2(v)) == i`; zero lands
/// in bucket 0 alongside 1. This trades resolution for a fixed footprint and
/// allocation-free recording — right for queue depths and flow sizes where
/// order of magnitude is what matters.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean of observations, or `0.0` if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(Histogram),
}

/// A thread-safe, cloneable table of named metrics.
///
/// Clones share the table. Layers register (or re-open) metrics by name once
/// and keep the returned handle for the hot path; the registry lock is only
/// taken at registration and snapshot time.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Returns the float gauge named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn float_gauge(&self, name: &str) -> FloatGauge {
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::FloatGauge(FloatGauge::new()))
        {
            Metric::FloatGauge(g) => g.clone(),
            other => panic!("metric '{name}' is not a float gauge: {other:?}"),
        }
    }

    /// Returns the histogram named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Captures an immutable, deterministically ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("telemetry registry poisoned");
        let values = map
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::FloatGauge(g) => MetricValue::Float(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }
}

/// The captured value of one metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Last gauge value.
    Gauge(u64),
    /// Last float-gauge value.
    Float(f64),
    /// Histogram totals and per-bucket counts (64 log2 buckets).
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

/// An immutable capture of a [`Registry`], ordered by metric name.
///
/// Two snapshots compare equal iff every metric name and value matches, and
/// [`Snapshot::to_json`] is a pure function of that content — so equal
/// snapshots serialize to byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The captured value of `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// The captured counter value of `name`, or 0 if absent.
    ///
    /// Missing-as-zero matches how counters behave: a counter that was never
    /// registered was never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The captured gauge value of `name`, or 0 if absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The captured float-gauge value of `name`, or `0.0` if absent.
    #[must_use]
    pub fn float(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(MetricValue::Float(v)) => *v,
            _ => 0.0,
        }
    }

    /// Sum of all counters whose name starts with `prefix`.
    ///
    /// Useful for rolling up per-port or per-rank counters, e.g.
    /// `snapshot.counter_sum("netsim.port.") // all ports`.
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.values
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Iterates `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of captured metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges another snapshot into this one, summing counters and histogram
    /// buckets with matching names, taking the max of gauges, and the last
    /// value of float gauges.
    ///
    /// # Panics
    ///
    /// Panics if a name is present in both with different metric kinds.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.values {
            match self.values.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Float(a), MetricValue::Float(b)) => *a = *b,
                        (
                            MetricValue::Histogram {
                                count,
                                sum,
                                buckets,
                            },
                            MetricValue::Histogram {
                                count: c2,
                                sum: s2,
                                buckets: b2,
                            },
                        ) => {
                            *count += c2;
                            *sum += s2;
                            for (a, b) in buckets.iter_mut().zip(b2) {
                                *a += b;
                            }
                        }
                        (mine, _) => panic!("metric '{name}' kind mismatch in merge: {mine:?}"),
                    }
                }
            }
        }
    }

    /// Serializes to a deterministic JSON object keyed by metric name.
    ///
    /// Schema per value:
    /// * counters: `{"type":"counter","value":N}`
    /// * gauges: `{"type":"gauge","value":N}`
    /// * float gauges: `{"type":"float","value":X}`
    /// * histograms: `{"type":"histogram","count":N,"sum":N,"buckets":[...]}`
    ///   (trailing zero buckets elided)
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, v)) in self.values.iter().enumerate() {
            let _ = write!(out, "  {}: ", json_string(name));
            match v {
                MetricValue::Counter(n) => {
                    let _ = write!(out, "{{\"type\":\"counter\",\"value\":{n}}}");
                }
                MetricValue::Gauge(n) => {
                    let _ = write!(out, "{{\"type\":\"gauge\",\"value\":{n}}}");
                }
                MetricValue::Float(x) => {
                    let _ = write!(out, "{{\"type\":\"float\",\"value\":{}}}", json_f64(*x));
                }
                MetricValue::Histogram {
                    count,
                    sum,
                    buckets,
                } => {
                    let last = buckets.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
                    let body: Vec<String> = buckets[..last].iter().map(u64::to_string).collect();
                    let _ = write!(
                        out,
                        "{{\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\"buckets\":[{}]}}",
                        body.join(",")
                    );
                }
            }
            out.push_str(if i + 1 < self.values.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push('}');
        out
    }
}

/// Escapes a string as a JSON string literal (used by [`Snapshot::to_json`]
/// and by callers composing larger JSON documents out of snapshots).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (finite values only; non-finite values
/// map to `null`). Rust's shortest-roundtrip float formatting is
/// deterministic, which keeps snapshots byte-stable.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_shares_state_across_clones() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 4);
    }

    #[test]
    fn gauge_set_max_is_a_high_watermark() {
        let g = Gauge::new();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn float_gauge_round_trips_exactly() {
        let g = FloatGauge::new();
        g.set(0.1 + 0.2);
        assert_eq!(g.get(), 0.1 + 0.2);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 2); // 0 and 1
        assert_eq!(buckets[1], 2); // 2 and 3
        assert_eq!(buckets[2], 1); // 4
        assert_eq!(buckets[10], 1); // 1024
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.counter("a.count").add(1);
        r.gauge("c.depth").set(7);
        let json = r.snapshot().to_json();
        let a = json.find("\"a.count\"").unwrap();
        let b = json.find("\"b.count\"").unwrap();
        let c = json.find("\"c.depth\"").unwrap();
        assert!(a < b && b < c, "keys not sorted in {json}");
        assert_eq!(json, r.snapshot().to_json());
    }

    #[test]
    fn counter_sum_rolls_up_prefix() {
        let r = Registry::new();
        r.counter("port.0.trimmed").add(2);
        r.counter("port.1.trimmed").add(3);
        r.counter("portal.trimmed").add(100); // different prefix
        let snap = r.snapshot();
        assert_eq!(snap.counter_sum("port."), 5);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let r1 = Registry::new();
        r1.counter("n").add(2);
        r1.gauge("g").set(5);
        let r2 = Registry::new();
        r2.counter("n").add(3);
        r2.gauge("g").set(4);
        r2.counter("only2").add(1);
        let mut snap = r1.snapshot();
        snap.merge(&r2.snapshot());
        assert_eq!(snap.counter("n"), 5);
        assert_eq!(snap.gauge("g"), 5);
        assert_eq!(snap.counter("only2"), 1);
    }

    #[test]
    fn json_escapes_control_and_quote_chars() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn snapshots_of_equal_histories_are_byte_identical(
            adds in proptest::collection::vec((0usize..8, 1u64..1000), 1..50)
        ) {
            let build = || {
                let r = Registry::new();
                for (slot, n) in &adds {
                    r.counter(&format!("k.{slot}")).add(*n);
                }
                r.snapshot()
            };
            let (s1, s2) = (build(), build());
            prop_assert_eq!(&s1, &s2);
            prop_assert_eq!(s1.to_json(), s2.to_json());
        }

        #[test]
        fn histogram_count_matches_observations(
            values in proptest::collection::vec(0u64..1_000_000, 0..200)
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
            let total: u64 = h.bucket_counts().iter().sum();
            prop_assert_eq!(total, values.len() as u64);
        }
    }
}
