//! Lightweight telemetry for the trimgrad stack.
//!
//! The paper's whole evaluation is a story told through counters: packets
//! trimmed vs. dropped per switch port, gradient parts recovered per row,
//! time-to-baseline-accuracy per scheme. This crate gives every layer of the
//! stack one shared, dependency-free way to emit those numbers:
//!
//! * [`Counter`] — a monotone `u64`, updated with relaxed atomics so the
//!   simulator hot path pays one uncontended atomic add;
//! * [`Gauge`] — a last-value `u64` with a `set_max` high-watermark helper
//!   (queue depths);
//! * [`FloatGauge`] — a last-value `f64` (accuracies, throughputs);
//! * [`Histogram`] — fixed 64-bucket log2 histogram (FCTs, queue depths);
//! * [`Registry`] — a cloneable, thread-safe name → metric table that layers
//!   share by handle;
//! * [`Snapshot`] — an immutable, deterministically ordered capture of a
//!   registry with hand-rolled JSON export, so two runs with the same seed
//!   produce byte-identical snapshots.
//!
//! Naming convention: dot-separated lowercase paths, most-general first,
//! e.g. `netsim.port.2->5.trimmed` or `collective.rank.0.bytes_sent`.
//! Snapshots order keys lexicographically (via `BTreeMap`), which makes
//! JSON output reproducible without any canonicalization pass.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of buckets in a [`Histogram`]: one per possible `log2` of a `u64`,
/// plus a zero bucket folded into index 0.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotone event counter.
///
/// Cloning shares the underlying value (handles are `Arc`-backed), so a
/// hot loop can hold a clone and increment without touching the registry.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for integral quantities (queue bytes, window sizes).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicU64>,
}

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark tracking).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-value gauge for real-valued quantities (accuracy, seconds).
///
/// Stored as the `f64` bit pattern in an atomic; reads and writes are
/// lossless.
#[derive(Debug, Clone, Default)]
pub struct FloatGauge {
    bits: Arc<AtomicU64>,
}

impl FloatGauge {
    /// A fresh gauge at `0.0`.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed-size log2-bucketed histogram of `u64` observations.
///
/// Bucket `i` counts observations `v` with `floor(log2(v)) == i`; zero lands
/// in bucket 0 alongside 1. This trades resolution for a fixed footprint and
/// allocation-free recording — right for queue depths and flow sizes where
/// order of magnitude is what matters.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for HistogramInner {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let idx = if v <= 1 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Mean of observations, or `0.0` if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`) with within-bucket linear
    /// interpolation, or `0.0` if empty.
    ///
    /// The estimate lands inside the log2 bucket that contains the exact
    /// rank-`⌈q·n⌉` observation, so it is within a factor of 2 of the true
    /// quantile (bucket `i` spans `[2^i, 2^(i+1))`). See
    /// [`histogram_quantile`] for the interpolation rule.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        histogram_quantile(self.count(), &self.bucket_counts(), q)
    }

    fn bucket_counts(&self) -> Vec<u64> {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// Lower bound of log2 histogram bucket `i` (bucket 0 holds `{0, 1}`).
#[must_use]
pub fn histogram_bucket_lo(i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        (1u128 << i) as f64
    }
}

/// Exclusive upper bound of log2 histogram bucket `i`.
#[must_use]
pub fn histogram_bucket_hi(i: usize) -> f64 {
    (1u128 << (i + 1)) as f64
}

/// Estimates the `q`-quantile of a log2-bucketed histogram with linear
/// interpolation inside the target bucket.
///
/// The target rank is `max(1, q·count)` observations from the bottom; the
/// estimate is `lo + (hi - lo) · (rank - cum_below) / bucket_count` for the
/// bucket where the cumulative count first reaches the rank. Because the
/// exact rank-`⌈q·count⌉` observation lives in that same bucket, the
/// estimate's error is bounded by the bucket width: both values lie in
/// `[2^i, 2^(i+1))`, so `estimate / exact` is within `(1/2, 2]`.
///
/// Out-of-range `q` is clamped to `[0, 1]`; an empty histogram yields `0.0`.
#[must_use]
pub fn histogram_quantile(count: u64, buckets: &[u64], q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let target = (q * count as f64).max(1.0);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let below = cum as f64;
        cum += c;
        if cum as f64 >= target {
            let lo = histogram_bucket_lo(i);
            let hi = histogram_bucket_hi(i);
            return lo + (hi - lo) * (target - below) / c as f64;
        }
    }
    // Bucket counts summed below `count` (concurrent recording mid-read):
    // fall back to the top of the highest non-empty bucket.
    buckets
        .iter()
        .rposition(|&c| c != 0)
        .map_or(0.0, histogram_bucket_hi)
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    FloatGauge(FloatGauge),
    Histogram(Histogram),
}

/// A thread-safe, cloneable table of named metrics.
///
/// Clones share the table. Layers register (or re-open) metrics by name once
/// and keep the returned handle for the hot path; the registry lock is only
/// taken at registration and snapshot time.
///
/// [`Registry::scoped`] derives a handle that shares the same table but
/// prepends a tenant prefix to every name at registration time, so
/// multi-tenant callers get isolated namespaces while unscoped callers are
/// untouched.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
    /// Prepended (with a trailing `.`) to every metric name at registration
    /// time; empty for unscoped registries.
    prefix: Arc<str>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self {
            metrics: Arc::default(),
            prefix: Arc::from(""),
        }
    }

    /// A handle onto the same metric table that registers every metric under
    /// `scope` + `.`, e.g. `registry.scoped("tenant.job0").counter("steps")`
    /// opens `tenant.job0.steps`. Scopes nest: `scoped("a").scoped("b")`
    /// prefixes `a.b.`.
    #[must_use]
    pub fn scoped(&self, scope: &str) -> Registry {
        assert!(!scope.is_empty(), "telemetry scope must be non-empty");
        Registry {
            metrics: Arc::clone(&self.metrics),
            prefix: Arc::from(format!("{}{scope}.", self.prefix)),
        }
    }

    /// The scope prefix this handle registers under (`""` when unscoped,
    /// otherwise ends with `.`).
    #[must_use]
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    fn qualify(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// Returns the counter named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        let name = self.qualify(name);
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric '{name}' is not a counter: {other:?}"),
        }
    }

    /// Returns the gauge named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        let name = self.qualify(name);
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric '{name}' is not a gauge: {other:?}"),
        }
    }

    /// Returns the float gauge named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn float_gauge(&self, name: &str) -> FloatGauge {
        let name = self.qualify(name);
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::FloatGauge(FloatGauge::new()))
        {
            Metric::FloatGauge(g) => g.clone(),
            other => panic!("metric '{name}' is not a float gauge: {other:?}"),
        }
    }

    /// Returns the histogram named `name`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Histogram {
        let name = self.qualify(name);
        let mut map = self.metrics.lock().expect("telemetry registry poisoned");
        match map
            .entry(name.clone())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric '{name}' is not a histogram: {other:?}"),
        }
    }

    /// Captures an immutable, deterministically ordered snapshot.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("telemetry registry poisoned");
        let values = map
            .iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::FloatGauge(g) => MetricValue::Float(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }
}

/// The captured value of one metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter value.
    Counter(u64),
    /// Last gauge value.
    Gauge(u64),
    /// Last float-gauge value.
    Float(f64),
    /// Histogram totals and per-bucket counts (64 log2 buckets).
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Per-bucket observation counts.
        buckets: Vec<u64>,
    },
}

/// An immutable capture of a [`Registry`], ordered by metric name.
///
/// Two snapshots compare equal iff every metric name and value matches, and
/// [`Snapshot::to_json`] is a pure function of that content — so equal
/// snapshots serialize to byte-identical JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// The captured value of `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// The captured counter value of `name`, or 0 if absent.
    ///
    /// Missing-as-zero matches how counters behave: a counter that was never
    /// registered was never incremented.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// The captured gauge value of `name`, or 0 if absent.
    #[must_use]
    pub fn gauge(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// The captured float-gauge value of `name`, or `0.0` if absent.
    #[must_use]
    pub fn float(&self, name: &str) -> f64 {
        match self.values.get(name) {
            Some(MetricValue::Float(v)) => *v,
            _ => 0.0,
        }
    }

    /// The captured histogram `(count, sum, buckets)` of `name`, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<(u64, u64, &[u64])> {
        match self.values.get(name) {
            Some(MetricValue::Histogram {
                count,
                sum,
                buckets,
            }) => Some((*count, *sum, buckets.as_slice())),
            _ => None,
        }
    }

    /// Interpolated `q`-quantile of the captured histogram `name`, or `0.0`
    /// if absent or empty (see [`histogram_quantile`]).
    #[must_use]
    pub fn quantile(&self, name: &str, q: f64) -> f64 {
        self.histogram(name).map_or(0.0, |(count, _, buckets)| {
            histogram_quantile(count, buckets, q)
        })
    }

    /// Sum of all counters whose name starts with `prefix`.
    ///
    /// Useful for rolling up per-port or per-rank counters, e.g.
    /// `snapshot.counter_sum("netsim.port.") // all ports`.
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.values
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Iterates `(name, value)` pairs in lexicographic name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of captured metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the snapshot is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges another snapshot into this one, summing counters and histogram
    /// buckets with matching names, taking the max of gauges, and the last
    /// value of float gauges.
    ///
    /// # Panics
    ///
    /// Panics if a name is present in both with different metric kinds.
    pub fn merge(&mut self, other: &Snapshot) {
        for (name, theirs) in &other.values {
            match self.values.entry(name.clone()) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    match (e.get_mut(), theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = (*a).max(*b),
                        (MetricValue::Float(a), MetricValue::Float(b)) => *a = *b,
                        (
                            MetricValue::Histogram {
                                count,
                                sum,
                                buckets,
                            },
                            MetricValue::Histogram {
                                count: c2,
                                sum: s2,
                                buckets: b2,
                            },
                        ) => {
                            *count += c2;
                            *sum += s2;
                            for (a, b) in buckets.iter_mut().zip(b2) {
                                *a += b;
                            }
                        }
                        (mine, _) => panic!("metric '{name}' kind mismatch in merge: {mine:?}"),
                    }
                }
            }
        }
    }

    /// Serializes to a deterministic JSON object keyed by metric name.
    ///
    /// Schema per value:
    /// * counters: `{"type":"counter","value":N}`
    /// * gauges: `{"type":"gauge","value":N}`
    /// * float gauges: `{"type":"float","value":X}`
    /// * histograms: `{"type":"histogram","count":N,"sum":N,"buckets":[...]}`
    ///   (trailing zero buckets elided)
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, (name, v)) in self.values.iter().enumerate() {
            let _ = write!(out, "  {}: {}", json_string(name), metric_value_json(v));
            out.push_str(if i + 1 < self.values.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push('}');
        out
    }
}

/// Renders one [`MetricValue`] as the JSON object used by
/// [`Snapshot::to_json`] and [`TimeSeries::to_json`] (trailing zero histogram
/// buckets elided).
fn metric_value_json(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(n) => format!("{{\"type\":\"counter\",\"value\":{n}}}"),
        MetricValue::Gauge(n) => format!("{{\"type\":\"gauge\",\"value\":{n}}}"),
        MetricValue::Float(x) => format!("{{\"type\":\"float\",\"value\":{}}}", json_f64(*x)),
        MetricValue::Histogram {
            count,
            sum,
            buckets,
        } => {
            let last = buckets.iter().rposition(|&b| b != 0).map_or(0, |p| p + 1);
            let body: Vec<String> = buckets[..last].iter().map(u64::to_string).collect();
            format!(
                "{{\"type\":\"histogram\",\"count\":{count},\"sum\":{sum},\"buckets\":[{}]}}",
                body.join(",")
            )
        }
    }
}

/// One sim-time-stamped sample in a [`TimeSeries`].
///
/// `values` holds the *delta* since the previous sample for counters and
/// histograms (so a point answers "what happened in this interval"), and the
/// instantaneous value for gauges and float gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeriesPoint {
    /// Simulated timestamp of the sample, in nanoseconds.
    pub at_ns: u64,
    /// Per-metric interval deltas (counters, histograms) or instantaneous
    /// values (gauges, float gauges), ordered by name.
    pub values: BTreeMap<String, MetricValue>,
}

impl TimeSeriesPoint {
    /// The sampled value of `name`, if present.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }
}

/// A bounded ring of periodic [`Snapshot`] deltas, stamped with simulated
/// time.
///
/// The sampler is entirely pull-based and clock-free: something that owns a
/// deterministic clock (the simulator's event loop, a trainer's epoch tick)
/// calls [`TimeSeries::sample`] with the current sim time and a fresh
/// snapshot. Counters and histograms are stored as per-interval deltas;
/// gauges and float gauges as last values. When the ring is full the oldest
/// point is dropped (and counted), so memory stays bounded no matter the
/// horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    capacity: usize,
    points: VecDeque<TimeSeriesPoint>,
    dropped_oldest: u64,
    prev: Snapshot,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "time series capacity must be non-zero");
        Self {
            capacity,
            points: VecDeque::with_capacity(capacity.min(1024)),
            dropped_oldest: 0,
            prev: Snapshot::default(),
        }
    }

    /// Records one sample at sim time `at_ns` from a full registry snapshot,
    /// storing counter/histogram deltas against the previous sample and
    /// last values for gauges.
    pub fn sample(&mut self, at_ns: u64, snap: &Snapshot) {
        let values = snap
            .iter()
            .map(|(name, v)| {
                let delta = match (v, self.prev.get(name)) {
                    (MetricValue::Counter(now), prev) => {
                        let before = match prev {
                            Some(MetricValue::Counter(b)) => *b,
                            _ => 0,
                        };
                        MetricValue::Counter(now.saturating_sub(before))
                    }
                    (
                        MetricValue::Histogram {
                            count,
                            sum,
                            buckets,
                        },
                        prev,
                    ) => {
                        let (pc, ps, pb): (u64, u64, &[u64]) = match prev {
                            Some(MetricValue::Histogram {
                                count: pc,
                                sum: ps,
                                buckets: pb,
                            }) => (*pc, *ps, pb.as_slice()),
                            _ => (0, 0, &[]),
                        };
                        MetricValue::Histogram {
                            count: count.saturating_sub(pc),
                            sum: sum.saturating_sub(ps),
                            buckets: buckets
                                .iter()
                                .enumerate()
                                .map(|(i, &b)| b.saturating_sub(pb.get(i).copied().unwrap_or(0)))
                                .collect(),
                        }
                    }
                    (v, _) => v.clone(),
                };
                (name.to_string(), delta)
            })
            .collect();
        if self.points.len() == self.capacity {
            self.points.pop_front();
            self.dropped_oldest += 1;
        }
        self.points.push_back(TimeSeriesPoint { at_ns, values });
        self.prev = snap.clone();
    }

    /// The retained points, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &TimeSeriesPoint> {
        self.points.iter()
    }

    /// Number of retained points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no samples have been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Points evicted because the ring was full.
    #[must_use]
    pub fn dropped_oldest(&self) -> u64 {
        self.dropped_oldest
    }

    /// One metric's trajectory as `(at_ns, value)` pairs, oldest first.
    ///
    /// Counters yield their per-interval delta, gauges their sampled value,
    /// float gauges their value, histograms their per-interval observation
    /// count. Points where the metric is absent are skipped.
    #[must_use]
    pub fn series(&self, name: &str) -> Vec<(u64, f64)> {
        self.points
            .iter()
            .filter_map(|p| {
                let v = match p.values.get(name)? {
                    MetricValue::Counter(n) | MetricValue::Gauge(n) => *n as f64,
                    MetricValue::Float(x) => *x,
                    MetricValue::Histogram { count, .. } => *count as f64,
                };
                Some((p.at_ns, v))
            })
            .collect()
    }

    /// Serializes to deterministic JSON:
    /// `{"capacity":N,"dropped_oldest":N,"points":[{"at_ns":T,"metrics":{...}},...]}`
    /// with per-metric objects in the [`Snapshot::to_json`] schema.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"capacity\":{},\"dropped_oldest\":{},\"points\":[",
            self.capacity, self.dropped_oldest
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  {{\"at_ns\":{},\"metrics\":{{", p.at_ns);
            for (j, (name, v)) in p.values.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{}", json_string(name), metric_value_json(v));
            }
            out.push_str("}}");
        }
        out.push_str("\n]}");
        out
    }

    /// FNV-1a digest of the serialized series — a stable fingerprint for
    /// golden determinism tests.
    #[must_use]
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_json().as_bytes())
    }
}

/// FNV-1a over a byte string (the same digest the netsim workload generator
/// uses for golden determinism tests).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Escapes a string as a JSON string literal (used by [`Snapshot::to_json`]
/// and by callers composing larger JSON documents out of snapshots).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (finite values only; non-finite values
/// map to `null`). Rust's shortest-roundtrip float formatting is
/// deterministic, which keeps snapshots byte-stable.
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_shares_state_across_clones() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 4);
    }

    #[test]
    fn gauge_set_max_is_a_high_watermark() {
        let g = Gauge::new();
        g.set_max(5);
        g.set_max(3);
        assert_eq!(g.get(), 5);
        g.set(1);
        assert_eq!(g.get(), 1);
    }

    #[test]
    fn float_gauge_round_trips_exactly() {
        let g = FloatGauge::new();
        g.set(0.1 + 0.2);
        assert_eq!(g.get(), 0.1 + 0.2);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1034);
        let buckets = h.bucket_counts();
        assert_eq!(buckets[0], 2); // 0 and 1
        assert_eq!(buckets[1], 2); // 2 and 3
        assert_eq!(buckets[2], 1); // 4
        assert_eq!(buckets[10], 1); // 1024
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("b.count").add(2);
        r.counter("a.count").add(1);
        r.gauge("c.depth").set(7);
        let json = r.snapshot().to_json();
        let a = json.find("\"a.count\"").unwrap();
        let b = json.find("\"b.count\"").unwrap();
        let c = json.find("\"c.depth\"").unwrap();
        assert!(a < b && b < c, "keys not sorted in {json}");
        assert_eq!(json, r.snapshot().to_json());
    }

    #[test]
    fn counter_sum_rolls_up_prefix() {
        let r = Registry::new();
        r.counter("port.0.trimmed").add(2);
        r.counter("port.1.trimmed").add(3);
        r.counter("portal.trimmed").add(100); // different prefix
        let snap = r.snapshot();
        assert_eq!(snap.counter_sum("port."), 5);
    }

    #[test]
    fn merge_sums_counters_and_maxes_gauges() {
        let r1 = Registry::new();
        r1.counter("n").add(2);
        r1.gauge("g").set(5);
        let r2 = Registry::new();
        r2.counter("n").add(3);
        r2.gauge("g").set(4);
        r2.counter("only2").add(1);
        let mut snap = r1.snapshot();
        snap.merge(&r2.snapshot());
        assert_eq!(snap.counter("n"), 5);
        assert_eq!(snap.gauge("g"), 5);
        assert_eq!(snap.counter("only2"), 1);
    }

    #[test]
    fn json_escapes_control_and_quote_chars() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn scoped_registry_prefixes_names_and_shares_the_table() {
        let r = Registry::new();
        let t0 = r.scoped("tenant.job0");
        let t1 = r.scoped("tenant.job1");
        t0.counter("steps").add(3);
        t1.counter("steps").add(5);
        r.counter("fabric.events").inc();
        let snap = r.snapshot();
        assert_eq!(snap.counter("tenant.job0.steps"), 3);
        assert_eq!(snap.counter("tenant.job1.steps"), 5);
        assert_eq!(snap.counter("fabric.events"), 1);
        // A scoped handle's snapshot still sees the whole shared table.
        assert_eq!(t0.snapshot(), snap);
    }

    #[test]
    fn scopes_nest() {
        let r = Registry::new();
        let inner = r.scoped("tenant.job2").scoped("collective");
        assert_eq!(inner.prefix(), "tenant.job2.collective.");
        inner.counter("rank.0.bytes_sent").add(7);
        assert_eq!(
            r.snapshot()
                .counter("tenant.job2.collective.rank.0.bytes_sent"),
            7
        );
    }

    #[test]
    fn scoped_and_unscoped_same_leaf_name_stay_distinct() {
        let r = Registry::new();
        r.counter("steps").add(1);
        r.scoped("t").counter("steps").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("steps"), 1);
        assert_eq!(snap.counter("t.steps"), 2);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        assert_eq!(Histogram::new().quantile(0.5), 0.0);
        assert_eq!(histogram_quantile(0, &[], 0.99), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_a_bucket() {
        let h = Histogram::new();
        // 100 observations, all in bucket 6 ([64, 128)).
        for _ in 0..100 {
            h.record(64);
        }
        // target = q·100 observations into a 64-wide bucket starting at 64.
        assert_eq!(h.quantile(0.5), 64.0 + 64.0 * 0.5);
        assert_eq!(h.quantile(1.0), 128.0);
        // q = 0 clamps to rank 1.
        assert_eq!(h.quantile(0.0), 64.0 + 64.0 * 0.01);
    }

    #[test]
    fn quantile_walks_across_buckets() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(2); // bucket 1: [2, 4)
        }
        for _ in 0..10 {
            h.record(1000); // bucket 9: [512, 1024)
        }
        assert!(h.quantile(0.5) < 4.0);
        let p99 = h.quantile(0.99);
        assert!((512.0..=1024.0).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn snapshot_quantile_reads_captured_histograms() {
        let r = Registry::new();
        let h = r.histogram("step_ns");
        for v in [10, 20, 30, 40] {
            h.record(v);
        }
        let snap = r.snapshot();
        assert!(snap.quantile("step_ns", 0.5) > 0.0);
        assert_eq!(snap.quantile("missing", 0.5), 0.0);
    }

    #[test]
    fn time_series_stores_counter_deltas_and_gauge_levels() {
        let r = Registry::new();
        let c = r.counter("sent");
        let g = r.gauge("depth");
        let mut ts = TimeSeries::new(8);
        c.add(5);
        g.set(3);
        ts.sample(1_000, &r.snapshot());
        c.add(2);
        g.set(9);
        ts.sample(2_000, &r.snapshot());
        assert_eq!(ts.series("sent"), vec![(1_000, 5.0), (2_000, 2.0)]);
        assert_eq!(ts.series("depth"), vec![(1_000, 3.0), (2_000, 9.0)]);
    }

    #[test]
    fn time_series_histogram_deltas_cover_the_interval_only() {
        let r = Registry::new();
        let h = r.histogram("step_ns");
        let mut ts = TimeSeries::new(8);
        h.record(100);
        ts.sample(1, &r.snapshot());
        h.record(100);
        h.record(200);
        ts.sample(2, &r.snapshot());
        let points: Vec<_> = ts.points().collect();
        match points[1].get("step_ns") {
            Some(MetricValue::Histogram { count, sum, .. }) => {
                assert_eq!(*count, 2);
                assert_eq!(*sum, 300);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn time_series_ring_drops_oldest_at_capacity() {
        let r = Registry::new();
        let c = r.counter("n");
        let mut ts = TimeSeries::new(2);
        for t in 0..5u64 {
            c.inc();
            ts.sample(t, &r.snapshot());
        }
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.dropped_oldest(), 3);
        let ats: Vec<u64> = ts.points().map(|p| p.at_ns).collect();
        assert_eq!(ats, vec![3, 4]);
    }

    #[test]
    fn time_series_json_and_digest_are_stable() {
        let build = || {
            let r = Registry::new();
            let mut ts = TimeSeries::new(4);
            r.counter("a").add(1);
            r.float_gauge("loss").set(0.5);
            ts.sample(10, &r.snapshot());
            r.counter("a").add(2);
            ts.sample(20, &r.snapshot());
            ts
        };
        let (t1, t2) = (build(), build());
        assert_eq!(t1.to_json(), t2.to_json());
        assert_eq!(t1.digest(), t2.digest());
        assert!(t1.to_json().contains("\"at_ns\":10"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn snapshots_of_equal_histories_are_byte_identical(
            adds in proptest::collection::vec((0usize..8, 1u64..1000), 1..50)
        ) {
            let build = || {
                let r = Registry::new();
                for (slot, n) in &adds {
                    r.counter(&format!("k.{slot}")).add(*n);
                }
                r.snapshot()
            };
            let (s1, s2) = (build(), build());
            prop_assert_eq!(&s1, &s2);
            prop_assert_eq!(s1.to_json(), s2.to_json());
        }

        #[test]
        fn quantile_estimate_lands_in_the_exact_values_bucket(
            values in proptest::collection::vec(0u64..1_000_000, 1..300),
            qs in proptest::collection::vec(0.0f64..=1.0, 1..8)
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut values = values;
            values.sort_unstable();
            let n = values.len();
            for &q in &qs {
                // Exact oracle: nearest rank ⌈q·n⌉ (min 1) over the sorted
                // values.
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = values[rank - 1];
                let est = h.quantile(q);
                // The estimate interpolates inside the log2 bucket that
                // contains the exact observation, so it must respect that
                // bucket's bounds.
                let idx = if exact <= 1 {
                    0
                } else {
                    63 - exact.leading_zeros() as usize
                };
                let (lo, hi) = (histogram_bucket_lo(idx), histogram_bucket_hi(idx));
                prop_assert!(
                    est >= lo && est <= hi,
                    "q={q} exact={exact} est={est} bucket=[{lo},{hi}]"
                );
            }
        }

        #[test]
        fn histogram_count_matches_observations(
            values in proptest::collection::vec(0u64..1_000_000, 0..200)
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            prop_assert_eq!(h.count(), values.len() as u64);
            prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
            let total: u64 = h.bucket_counts().iter().sum();
            prop_assert_eq!(total, values.len() as u64);
        }
    }
}
