//! The typed trace-event taxonomy.
//!
//! Every event carries the **causal identifiers** needed to follow one packet
//! end to end — the flow id, the transport sequence number within the flow,
//! and the simulator-assigned packet id — or, for codec-level events, the
//! (message, row) pair. Event kinds are named like telemetry keys
//! (dot-separated lowercase, enforced by the `trace-event-naming` lint rule)
//! so queries and counters share one vocabulary.
//!
//! Events are plain data: fixed-width integers plus a `Cow<'static, str>`
//! name for span/mark events, which borrows on the hot path (no allocation)
//! and owns only when decoded back from a trace file.

use std::borrow::Cow;

/// Why the fabric destroyed a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Data queue full and the policy (or the packet) forbade trimming.
    DataFull,
    /// High-priority queue full.
    PrioFull,
    /// Random in-flight link loss.
    Random,
    /// Destroyed by an installed fault plan.
    Fault,
    /// No route to the destination.
    NoRoute,
}

impl DropReason {
    /// Stable lowercase label (used in JSONL and query output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::DataFull => "data_full",
            Self::PrioFull => "prio_full",
            Self::Random => "random",
            Self::Fault => "fault",
            Self::NoRoute => "no_route",
        }
    }

    pub(crate) fn to_tag(self) -> u8 {
        match self {
            Self::DataFull => 0,
            Self::PrioFull => 1,
            Self::Random => 2,
            Self::Fault => 3,
            Self::NoRoute => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, String> {
        Ok(match tag {
            0 => Self::DataFull,
            1 => Self::PrioFull,
            2 => Self::Random,
            3 => Self::Fault,
            4 => Self::NoRoute,
            other => return Err(format!("unknown drop-reason tag {other}")),
        })
    }
}

/// One flight-recorder event.
///
/// Packet-lifecycle events (`pkt.*`, `fault.injected`) come from the network
/// simulator's serial event loop; row events (`row.*`) from the wire/codec
/// layers; step and epoch events from the collective and training layers;
/// `span.*`/`mark` from [`crate::Tracer::span_at`] and
/// [`crate::Tracer::mark`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A host handed a packet to its NIC.
    PktSent {
        /// Sending host.
        node: u32,
        /// Flow id.
        flow: u64,
        /// Transport sequence within the flow.
        pseq: u64,
        /// Simulator-assigned globally unique packet id.
        pkt: u64,
        /// Wire size in bytes.
        size: u32,
    },
    /// A packet was queued intact on an egress port.
    PktEnqueued {
        /// Node owning the egress port.
        node: u32,
        /// Next hop the port leads to.
        to: u32,
        /// Flow id.
        flow: u64,
        /// Transport sequence within the flow.
        pseq: u64,
        /// Packet id.
        pkt: u64,
        /// Wire size in bytes.
        size: u32,
        /// Whether it entered the high-priority queue.
        prio: bool,
    },
    /// A switch trimmed a packet on queue overflow and requeued the remnant.
    PktTrimmed {
        /// Node owning the egress port.
        node: u32,
        /// Next hop the port leads to.
        to: u32,
        /// Flow id.
        flow: u64,
        /// Transport sequence within the flow.
        pseq: u64,
        /// Packet id.
        pkt: u64,
        /// Size before the trim.
        old_size: u32,
        /// Surviving size after the trim.
        new_size: u32,
    },
    /// A packet was destroyed.
    PktDropped {
        /// Node where the drop happened.
        node: u32,
        /// Next hop it was headed to (equal to `node` for no-route drops).
        to: u32,
        /// Flow id.
        flow: u64,
        /// Transport sequence within the flow.
        pseq: u64,
        /// Packet id (`u64::MAX` when dropped before one was assigned).
        pkt: u64,
        /// Drop cause.
        reason: DropReason,
    },
    /// A packet reached its destination host.
    PktDelivered {
        /// Receiving host.
        node: u32,
        /// Flow id.
        flow: u64,
        /// Transport sequence within the flow.
        pseq: u64,
        /// Packet id.
        pkt: u64,
        /// Wire size on arrival.
        size: u32,
        /// Whether it arrived trimmed.
        trimmed: bool,
    },
    /// A fault plan materialized an extra packet (duplicate or replay).
    FaultInjected {
        /// Node owning the channel.
        node: u32,
        /// Channel's next hop.
        to: u32,
        /// Flow id of the cloned packet.
        flow: u64,
        /// Transport sequence of the cloned packet.
        pseq: u64,
        /// Packet id the clone shares with its original.
        pkt: u64,
    },
    /// One gradient row was encoded and packetized.
    RowEncoded {
        /// Message id.
        msg: u32,
        /// Row id within the message.
        row: u32,
        /// Data frames produced.
        packets: u32,
        /// Total wire bytes of those frames.
        bytes: u64,
    },
    /// A row assembler completed its head sections (decodable prefix).
    RowAssembled {
        /// Message id.
        msg: u32,
        /// Row id within the message.
        row: u32,
        /// Coordinates received so far.
        coords: u32,
    },
    /// One gradient row was decoded.
    RowDecoded {
        /// Message id.
        msg: u32,
        /// Row id within the message.
        row: u32,
        /// Coordinates recovered.
        coords: u32,
        /// Coordinates lost to trimming (encoded − received).
        lost: u32,
    },
    /// An all-reduce protocol step began sending.
    StepStarted {
        /// Worker rank.
        rank: u32,
        /// Protocol step index.
        step: u32,
        /// Whether this is a reduce-scatter (accumulate) step.
        reduce: bool,
    },
    /// An all-reduce protocol step's inbound message was applied.
    StepApplied {
        /// Worker rank.
        rank: u32,
        /// Protocol step index.
        step: u32,
    },
    /// One training epoch finished.
    EpochTick {
        /// Epoch index.
        epoch: u32,
        /// Mean training loss of the epoch.
        loss: f64,
        /// Top-1 accuracy after the epoch.
        top1: f64,
    },
    /// A scoped span opened.
    SpanEnter {
        /// Span name (dot-separated lowercase).
        name: Cow<'static, str>,
    },
    /// A scoped span closed.
    SpanExit {
        /// Span name.
        name: Cow<'static, str>,
        /// Events emitted while the span was open.
        events: u64,
    },
    /// A named point event with one value.
    Mark {
        /// Mark name (dot-separated lowercase).
        name: Cow<'static, str>,
        /// Attached value.
        value: u64,
    },
}

impl TraceEvent {
    /// The event's kind, named like a telemetry key.
    #[must_use]
    pub fn kind_name(&self) -> &'static str {
        match self {
            Self::PktSent { .. } => "pkt.sent",
            Self::PktEnqueued { .. } => "pkt.enqueued",
            Self::PktTrimmed { .. } => "pkt.trimmed",
            Self::PktDropped { .. } => "pkt.dropped",
            Self::PktDelivered { .. } => "pkt.delivered",
            Self::FaultInjected { .. } => "fault.injected",
            Self::RowEncoded { .. } => "row.encoded",
            Self::RowAssembled { .. } => "row.assembled",
            Self::RowDecoded { .. } => "row.decoded",
            Self::StepStarted { .. } => "step.started",
            Self::StepApplied { .. } => "step.applied",
            Self::EpochTick { .. } => "epoch.tick",
            Self::SpanEnter { .. } => "span.enter",
            Self::SpanExit { .. } => "span.exit",
            Self::Mark { .. } => "mark",
        }
    }

    /// The flow id, for packet-lifecycle events.
    #[must_use]
    pub fn flow(&self) -> Option<u64> {
        match self {
            Self::PktSent { flow, .. }
            | Self::PktEnqueued { flow, .. }
            | Self::PktTrimmed { flow, .. }
            | Self::PktDropped { flow, .. }
            | Self::PktDelivered { flow, .. }
            | Self::FaultInjected { flow, .. } => Some(*flow),
            _ => None,
        }
    }

    /// The transport sequence number, for packet-lifecycle events.
    #[must_use]
    pub fn pkt_seq(&self) -> Option<u64> {
        match self {
            Self::PktSent { pseq, .. }
            | Self::PktEnqueued { pseq, .. }
            | Self::PktTrimmed { pseq, .. }
            | Self::PktDropped { pseq, .. }
            | Self::PktDelivered { pseq, .. }
            | Self::FaultInjected { pseq, .. } => Some(*pseq),
            _ => None,
        }
    }

    /// The span/mark name, if this event carries one.
    #[must_use]
    pub fn name(&self) -> Option<&str> {
        match self {
            Self::SpanEnter { name } | Self::SpanExit { name, .. } | Self::Mark { name, .. } => {
                Some(name)
            }
            _ => None,
        }
    }
}

/// One sample of every event variant, for serialization tests.
#[cfg(test)]
pub(crate) fn samples() -> Vec<TraceEvent> {
    vec![
        TraceEvent::PktSent {
            node: 1,
            flow: 2,
            pseq: 3,
            pkt: 4,
            size: 1500,
        },
        TraceEvent::PktEnqueued {
            node: 0,
            to: 1,
            flow: 2,
            pseq: 3,
            pkt: 4,
            size: 1500,
            prio: false,
        },
        TraceEvent::PktTrimmed {
            node: 0,
            to: 1,
            flow: 2,
            pseq: 3,
            pkt: 4,
            old_size: 1500,
            new_size: 78,
        },
        TraceEvent::PktDropped {
            node: 0,
            to: 1,
            flow: 2,
            pseq: 3,
            pkt: 4,
            reason: DropReason::Random,
        },
        TraceEvent::PktDelivered {
            node: 1,
            flow: 2,
            pseq: 3,
            pkt: 4,
            size: 78,
            trimmed: true,
        },
        TraceEvent::FaultInjected {
            node: 0,
            to: 1,
            flow: 2,
            pseq: 3,
            pkt: 4,
        },
        TraceEvent::RowEncoded {
            msg: 1,
            row: 2,
            packets: 3,
            bytes: 4096,
        },
        TraceEvent::RowAssembled {
            msg: 1,
            row: 2,
            coords: 512,
        },
        TraceEvent::RowDecoded {
            msg: 1,
            row: 2,
            coords: 512,
            lost: 512,
        },
        TraceEvent::StepStarted {
            rank: 0,
            step: 1,
            reduce: true,
        },
        TraceEvent::StepApplied { rank: 0, step: 1 },
        TraceEvent::EpochTick {
            epoch: 3,
            loss: 0.25,
            top1: 0.875,
        },
        TraceEvent::SpanEnter {
            name: Cow::Borrowed("ring.send_step"),
        },
        TraceEvent::SpanExit {
            name: Cow::Borrowed("ring.send_step"),
            events: 9,
        },
        TraceEvent::Mark {
            name: Cow::Borrowed("conservation.violation"),
            value: 7,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_name_is_a_valid_telemetry_key() {
        for ev in samples() {
            let name = ev.kind_name();
            assert!(crate::is_valid_name(name), "bad kind name {name:?}");
        }
    }

    #[test]
    fn causal_accessors_cover_packet_events() {
        for ev in samples() {
            let is_pkt = ev.kind_name().starts_with("pkt.") || ev.kind_name() == "fault.injected";
            assert_eq!(ev.flow().is_some(), is_pkt, "{}", ev.kind_name());
            assert_eq!(ev.pkt_seq().is_some(), is_pkt, "{}", ev.kind_name());
        }
    }

    #[test]
    fn drop_reason_tags_roundtrip() {
        for r in [
            DropReason::DataFull,
            DropReason::PrioFull,
            DropReason::Random,
            DropReason::Fault,
            DropReason::NoRoute,
        ] {
            assert_eq!(DropReason::from_tag(r.to_tag()).unwrap(), r);
            assert!(crate::is_valid_name(r.name()));
        }
        assert!(DropReason::from_tag(99).is_err());
    }
}
