//! Deterministic flight recorder for the trimgrad stack.
//!
//! The telemetry crate answers *how many*; this crate answers *which one and
//! why*. Every layer emits typed [`TraceEvent`]s — packet enqueued / trimmed
//! / dropped / delivered at each switch port, row encode/decode, all-reduce
//! step boundaries, fault injections, epoch ticks — stamped with sim-time and
//! the causal identifiers (flow id + packet seq, or message + row id) needed
//! to follow one packet end to end. A bounded ring buffer keeps the most
//! recent events; a binary + JSONL sink persists them; the `trimgrad-trace`
//! CLI queries them.
//!
//! Design constraints, in order:
//!
//! 1. **Off means free.** Tracing is gated by `TRIMGRAD_TRACE`. A disabled
//!    [`Tracer`] is an `Option` that is `None`: [`Tracer::emit`] takes the
//!    event as a closure, so the disabled path is one branch and never
//!    constructs the event, formats a name, or allocates.
//! 2. **Determinism.** Events are only emitted from serial sections (the
//!    simulator event loop; the index-ordered merge loops after parallel
//!    maps), so the trace of a seeded run is byte-identical across runs and
//!    across `TRIMGRAD_THREADS` widths. Spans aggregate deterministic
//!    call/event *counts* into the telemetry [`Registry`] — never wall-clock
//!    durations, which the lint bans and determinism forbids.
//! 3. **Failures leave artifacts.** When the global tracer is enabled a
//!    panic hook dumps the ring to `trace_panic.bin`/`.jsonl` (in
//!    `TRIMGRAD_TRACE_DIR`, default `.`), so a failed chaos run is
//!    replayable instead of a counter diff.
//!
//! ```
//! use trimgrad_trace::{TraceEvent, Tracer};
//! let tracer = Tracer::enabled(1024);
//! {
//!     let _span = tracer.span("ring.send_step");
//!     tracer.emit(500, || TraceEvent::Mark {
//!         name: "demo".into(),
//!         value: 7,
//!     });
//! }
//! assert_eq!(tracer.snapshot().records.len(), 3); // enter, mark, exit
//! ```

#![forbid(unsafe_code)]

mod event;
pub mod query;
mod sink;

pub use event::{DropReason, TraceEvent};
pub use sink::{Record, Trace, MAGIC};

use std::borrow::Cow;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard, Once, OnceLock};
use trimgrad_telemetry::Registry;

/// Default ring-buffer capacity in events (override with
/// `TRIMGRAD_TRACE_CAP`).
pub const DEFAULT_CAP: usize = 1 << 18;

struct RingState {
    records: VecDeque<Record>,
    next_seq: u64,
    dropped: u64,
}

struct Inner {
    state: Mutex<RingState>,
    cap: usize,
}

/// Poison-tolerant lock: the panic hook must still be able to dump the ring
/// after a panic that happened while a guard was held.
fn lock(m: &Mutex<RingState>) -> MutexGuard<'_, RingState> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A cloneable handle to a flight recorder (or to nothing, when disabled).
///
/// Clones share the event ring; the attached telemetry [`Registry`] lives on
/// the *handle*, so two simulations sharing the global ring still aggregate
/// their span counters into their own registries (see
/// [`Tracer::with_registry`]).
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
    registry: Option<Registry>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("has_registry", &self.registry.is_some())
            .finish()
    }
}

impl Tracer {
    /// A disabled tracer: every operation is a no-op behind one branch.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled tracer holding at most `cap` events (oldest evicted first).
    #[must_use]
    pub fn enabled(cap: usize) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                state: Mutex::new(RingState {
                    records: VecDeque::with_capacity(cap.min(4096)),
                    next_seq: 0,
                    dropped: 0,
                }),
                cap: cap.max(1),
            })),
            registry: None,
        }
    }

    /// Builds from the environment: enabled iff `TRIMGRAD_TRACE` is set to a
    /// non-empty value other than `0`, with capacity from
    /// `TRIMGRAD_TRACE_CAP` (default [`DEFAULT_CAP`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::from_env_values(
            std::env::var("TRIMGRAD_TRACE").ok().as_deref(),
            std::env::var("TRIMGRAD_TRACE_CAP").ok().as_deref(),
        )
    }

    fn from_env_values(gate: Option<&str>, cap: Option<&str>) -> Self {
        match gate {
            Some(v) if !v.is_empty() && v != "0" => {
                let cap = cap
                    .and_then(|c| c.parse::<usize>().ok())
                    .unwrap_or(DEFAULT_CAP);
                Self::enabled(cap)
            }
            _ => Self::disabled(),
        }
    }

    /// The process-wide tracer, built once from the environment. When it is
    /// enabled, the dump-on-panic hook is installed on first access.
    #[must_use]
    pub fn global() -> &'static Self {
        static GLOBAL: OnceLock<Tracer> = OnceLock::new();
        let t = GLOBAL.get_or_init(Self::from_env);
        if t.is_enabled() {
            install_panic_hook(t.clone());
        }
        t
    }

    /// Returns this handle with `registry` attached; span counters aggregate
    /// there. The event ring (if any) is shared with `self`.
    #[must_use]
    pub fn with_registry(mut self, registry: Registry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records an event at sim-time `at` (nanoseconds). The closure is only
    /// evaluated when the tracer is enabled, so a disabled tracer pays one
    /// branch and never constructs the event.
    #[inline]
    pub fn emit(&self, at: u64, make: impl FnOnce() -> TraceEvent) {
        if let Some(inner) = &self.inner {
            let event = make();
            let mut st = lock(&inner.state);
            let seq = st.next_seq;
            st.next_seq += 1;
            if st.records.len() >= inner.cap {
                st.records.pop_front();
                st.dropped += 1;
            }
            st.records.push_back(Record { seq, at, event });
        }
    }

    /// Opens a scoped span at sim-time 0 (host-side work outside a
    /// simulation). See [`Tracer::span_at`].
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span(&self, name: &'static str) -> SpanGuard {
        self.span_at(name, 0)
    }

    /// Opens a scoped span: emits [`TraceEvent::SpanEnter`] now and, when the
    /// guard drops, [`TraceEvent::SpanExit`] carrying the number of events
    /// recorded while the span was open. If a registry is attached, the drop
    /// also bumps `trace.span.<name>.calls` and adds that event count to
    /// `trace.span.<name>.events` — deterministic counts, never wall-clock.
    ///
    /// Disabled tracer ⇒ the guard is inert. Spans nest; each guard settles
    /// its own bookkeeping independently.
    #[must_use = "dropping the guard immediately closes the span"]
    pub fn span_at(&self, name: &'static str, at: u64) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard {
                tracer: Self::disabled(),
                name,
                at,
                entered_at_seq: 0,
            };
        }
        self.emit(at, || TraceEvent::SpanEnter {
            name: Cow::Borrowed(name),
        });
        SpanGuard {
            tracer: self.clone(),
            name,
            at,
            entered_at_seq: self.events_emitted(),
        }
    }

    /// Records a named point event with one value.
    pub fn mark(&self, at: u64, name: &'static str, value: u64) {
        self.emit(at, || TraceEvent::Mark {
            name: Cow::Borrowed(name),
            value,
        });
    }

    /// Total events ever emitted through this ring (monotone; not reduced by
    /// eviction). Zero when disabled.
    #[must_use]
    pub fn events_emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| lock(&i.state).next_seq)
    }

    /// Events evicted by the bounded ring so far. Zero when disabled.
    #[must_use]
    pub fn dropped_oldest(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| lock(&i.state).dropped)
    }

    /// An owned copy of the current ring contents.
    #[must_use]
    pub fn snapshot(&self) -> Trace {
        self.inner.as_ref().map_or_else(Trace::default, |i| {
            let st = lock(&i.state);
            Trace {
                records: st.records.iter().cloned().collect(),
                dropped_oldest: st.dropped,
            }
        })
    }

    /// Empties the ring and resets the sequence/eviction counters. Used by
    /// tests and by figure binaries that record several runs in one process.
    pub fn clear(&self) {
        if let Some(i) = &self.inner {
            let mut st = lock(&i.state);
            st.records.clear();
            st.next_seq = 0;
            st.dropped = 0;
        }
    }

    /// Writes `<stem>.bin` (binary trace) and `<stem>.jsonl` under `dir`,
    /// creating the directory if needed. No-op returning `Ok(None)` when
    /// disabled.
    ///
    /// # Errors
    ///
    /// Filesystem failures, with the offending path in the message.
    pub fn dump(&self, dir: &Path, stem: &str) -> Result<Option<(PathBuf, PathBuf)>, String> {
        if !self.is_enabled() {
            return Ok(None);
        }
        let trace = self.snapshot();
        std::fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        let bin = dir.join(format!("{stem}.bin"));
        let jsonl = dir.join(format!("{stem}.jsonl"));
        std::fs::write(&bin, trace.to_binary())
            .map_err(|e| format!("write {}: {e}", bin.display()))?;
        std::fs::write(&jsonl, trace.to_jsonl())
            .map_err(|e| format!("write {}: {e}", jsonl.display()))?;
        Ok(Some((bin, jsonl)))
    }
}

/// RAII guard returned by [`Tracer::span_at`]; see there for drop semantics.
#[must_use = "a span closes when the guard drops"]
pub struct SpanGuard {
    tracer: Tracer,
    name: &'static str,
    at: u64,
    entered_at_seq: u64,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.tracer.is_enabled() {
            return;
        }
        let events = self
            .tracer
            .events_emitted()
            .saturating_sub(self.entered_at_seq);
        self.tracer.emit(self.at, || TraceEvent::SpanExit {
            name: Cow::Borrowed(self.name),
            events,
        });
        if let Some(reg) = &self.tracer.registry {
            reg.counter(&format!("trace.span.{}.calls", self.name))
                .inc();
            reg.counter(&format!("trace.span.{}.events", self.name))
                .add(events);
        }
    }
}

/// Opens a span on a tracer expression: `span!(tracer, "ring.send_step")`,
/// or on the process-global tracer: `span!("ring.send_step")`. Binds the
/// guard to `_span` unless you assign it yourself.
#[macro_export]
macro_rules! span {
    ($tracer:expr, $name:literal) => {
        $tracer.span($name)
    };
    ($name:literal) => {
        $crate::Tracer::global().span($name)
    };
}

fn install_panic_hook(tracer: Tracer) {
    static HOOK: Once = Once::new();
    HOOK.call_once(move || {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let dir = std::env::var("TRIMGRAD_TRACE_DIR").unwrap_or_else(|_| ".".to_string());
            match tracer.dump(Path::new(&dir), "trace_panic") {
                Ok(Some((bin, _))) => {
                    eprintln!("trimgrad-trace: dumped flight record to {}", bin.display());
                }
                Ok(None) => {}
                Err(e) => eprintln!("trimgrad-trace: panic dump failed: {e}"),
            }
            prev(info);
        }));
    });
}

/// Whether `name` follows the telemetry-key convention: dot-separated,
/// lowercase `[a-z0-9_]` segments, no empty segment. Shared by the event
/// taxonomy tests and the `trace-event-naming` lint fixtures.
#[must_use]
pub fn is_valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.split('.').all(|seg| {
            !seg.is_empty()
                && seg
                    .bytes()
                    .all(|b| matches!(b, b'a'..=b'z' | b'0'..=b'9' | b'_'))
        })
}

/// `usize` → `u32`, saturating. Event fields are fixed-width; call sites in
/// no-lossy-cast crates use this instead of `as`.
#[must_use]
pub fn sat32(v: usize) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// `usize` → `u64`, saturating (total on every supported platform).
#[must_use]
pub fn sat64(v: usize) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_evaluates_the_closure() {
        let t = Tracer::disabled();
        t.emit(0, || unreachable!("closure must not run when disabled"));
        assert!(!t.is_enabled());
        assert_eq!(t.events_emitted(), 0);
        assert_eq!(t.snapshot(), Trace::default());
        let _span = t.span("noop.span");
        t.mark(0, "noop.mark", 1);
        assert_eq!(t.snapshot(), Trace::default());
        assert!(t.dump(Path::new("/nonexistent"), "x").unwrap().is_none());
    }

    #[test]
    fn events_record_in_order_with_gapless_seqs() {
        let t = Tracer::enabled(64);
        for i in 0..5u64 {
            t.mark(i * 10, "tick", i);
        }
        let trace = t.snapshot();
        assert_eq!(trace.records.len(), 5);
        assert_eq!(trace.dropped_oldest, 0);
        for (i, rec) in trace.records.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.at, i as u64 * 10);
        }
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let t = Tracer::enabled(3);
        for i in 0..10u64 {
            t.mark(0, "tick", i);
        }
        let trace = t.snapshot();
        assert_eq!(trace.records.len(), 3);
        assert_eq!(trace.dropped_oldest, 7);
        assert_eq!(trace.records[0].seq, 7, "oldest surviving event");
        assert_eq!(t.events_emitted(), 10);
    }

    #[test]
    fn spans_nest_and_aggregate_into_registry() {
        let reg = Registry::new();
        let t = Tracer::enabled(64).with_registry(reg.clone());
        {
            let _outer = t.span_at("outer", 100);
            t.mark(110, "inside.outer", 1);
            {
                let _inner = t.span_at("inner", 120);
                t.mark(130, "inside.inner", 2);
            }
        }
        let snap = reg.snapshot();
        assert_eq!(snap.counter("trace.span.outer.calls"), 1);
        assert_eq!(snap.counter("trace.span.inner.calls"), 1);
        // inner saw: its own mark + nothing else.
        assert_eq!(snap.counter("trace.span.inner.events"), 1);
        // outer saw: mark, inner enter, inner mark, inner exit.
        assert_eq!(snap.counter("trace.span.outer.events"), 4);
        let kinds: Vec<&str> = t
            .snapshot()
            .records
            .iter()
            .map(|r| r.event.kind_name())
            .collect();
        assert_eq!(
            kinds,
            [
                "span.enter",
                "mark",
                "span.enter",
                "mark",
                "span.exit",
                "span.exit"
            ]
        );
    }

    #[test]
    fn span_macro_accepts_handle_form() {
        let t = Tracer::enabled(16);
        {
            let _g = span!(t, "macro.scope");
        }
        assert_eq!(t.events_emitted(), 2);
    }

    #[test]
    fn clear_resets_ring_and_counters() {
        let t = Tracer::enabled(2);
        for i in 0..5u64 {
            t.mark(0, "tick", i);
        }
        t.clear();
        assert_eq!(t.events_emitted(), 0);
        assert_eq!(t.dropped_oldest(), 0);
        assert!(t.snapshot().records.is_empty());
    }

    #[test]
    fn handles_share_the_ring_but_not_the_registry() {
        let t = Tracer::enabled(16);
        let a = t.clone().with_registry(Registry::new());
        let b = t.clone().with_registry(Registry::new());
        a.mark(0, "from.a", 1);
        b.mark(0, "from.b", 2);
        assert_eq!(t.snapshot().records.len(), 2);
        {
            let _s = a.span("only.a");
        }
        let bs = b.registry.as_ref().unwrap().snapshot();
        assert_eq!(bs.counter("trace.span.only.a.calls"), 0);
        let as_ = a.registry.as_ref().unwrap().snapshot();
        assert_eq!(as_.counter("trace.span.only.a.calls"), 1);
    }

    #[test]
    fn env_gate_parses() {
        assert!(Tracer::from_env_values(Some("1"), None).is_enabled());
        assert!(Tracer::from_env_values(Some("yes"), None).is_enabled());
        assert!(!Tracer::from_env_values(Some("0"), None).is_enabled());
        assert!(!Tracer::from_env_values(Some(""), None).is_enabled());
        assert!(!Tracer::from_env_values(None, None).is_enabled());
        let capped = Tracer::from_env_values(Some("1"), Some("5"));
        for i in 0..9u64 {
            capped.mark(0, "tick", i);
        }
        assert_eq!(capped.snapshot().records.len(), 5);
    }

    #[test]
    fn dump_writes_binary_and_jsonl() {
        let t = Tracer::enabled(16);
        t.mark(5, "artifact", 42);
        let dir = std::env::temp_dir().join(format!("trimgrad_trace_test_{}", std::process::id()));
        let (bin, jsonl) = t.dump(&dir, "dump_test").unwrap().unwrap();
        let loaded = Trace::load(&bin).unwrap();
        assert_eq!(loaded, t.snapshot());
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert!(text.contains("\"kind\":\"mark\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn name_validity_rules() {
        for good in ["pkt.sent", "ring.send_step", "a.b_c.d0", "mark"] {
            assert!(is_valid_name(good), "{good}");
        }
        for bad in ["", ".", "a..b", "A.b", "a-b", "a.b.", ".a", "has space"] {
            assert!(!is_valid_name(bad), "{bad:?}");
        }
    }

    #[test]
    fn saturating_helpers() {
        assert_eq!(sat32(7), 7);
        assert_eq!(sat32(usize::MAX), u32::MAX);
        assert_eq!(sat64(7), 7);
    }
}
