//! `trimgrad-trace` — query CLI over binary flight-recorder traces.
//!
//! ```text
//! trimgrad-trace query TRACE.bin [--summary] [--follow FLOW:SEQ]
//!                                [--diff OTHER.bin] [--top-trimmed N]
//!                                [--jsonl OUT.jsonl]
//!                                [--tenant PREFIX] [--between T0 T1]
//! ```
//!
//! With no action flag, prints the summary. `--tenant` and `--between` are
//! filters applied to the loaded trace before any action runs: `--tenant`
//! keeps one tenant's flows (a scope name like `tenant.job2` or a raw
//! `flow >> 32` key), `--between` keeps the `[T0, T1]` sim-time window in
//! nanoseconds. All output is deterministic for a given trace file, so it
//! can be captured in CI logs and diffed.

use std::process::ExitCode;
use trimgrad_trace::{query, Trace};

const USAGE: &str = "usage: trimgrad-trace query TRACE.bin \
[--summary] [--follow FLOW:SEQ] [--diff OTHER.bin] [--top-trimmed N] [--jsonl OUT.jsonl] \
[--tenant PREFIX] [--between T0 T1]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trimgrad-trace: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("query") => {}
        Some("--help" | "-h") | None => return Err(USAGE.to_string()),
        Some(other) => return Err(format!("unknown command {other:?}\n{USAGE}")),
    }

    let mut trace_path: Option<&str> = None;
    let mut actions: Vec<Action> = Vec::new();
    let mut tenant: Option<u64> = None;
    let mut between: Option<(u64, u64)> = None;
    let mut it = it.peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--summary" => actions.push(Action::Summary),
            "--tenant" => {
                let spec = it.next().ok_or("--tenant needs a scope prefix or key")?;
                tenant = Some(query::tenant_key(spec)?);
            }
            "--between" => {
                let t0 = it.next().ok_or("--between needs T0 and T1 (ns)")?;
                let t1 = it.next().ok_or("--between needs T0 and T1 (ns)")?;
                let t0 = parse_u64(t0).map_err(|e| format!("--between T0: {e}"))?;
                let t1 = parse_u64(t1).map_err(|e| format!("--between T1: {e}"))?;
                if t0 > t1 {
                    return Err(format!("--between: T0 {t0} is after T1 {t1}"));
                }
                between = Some((t0, t1));
            }
            "--follow" => {
                let spec = it.next().ok_or("--follow needs FLOW:SEQ")?;
                let (flow, pseq) = parse_follow(spec)?;
                actions.push(Action::Follow { flow, pseq });
            }
            "--diff" => {
                let other = it.next().ok_or("--diff needs a second trace file")?;
                actions.push(Action::Diff {
                    other: other.clone(),
                });
            }
            "--top-trimmed" => {
                let n = it.next().ok_or("--top-trimmed needs a count")?;
                let n: usize = n
                    .parse()
                    .map_err(|_| format!("--top-trimmed: bad count {n:?}"))?;
                actions.push(Action::TopTrimmed { n });
            }
            "--jsonl" => {
                let out = it.next().ok_or("--jsonl needs an output path")?;
                actions.push(Action::Jsonl { out: out.clone() });
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}\n{USAGE}"));
            }
            other => {
                if trace_path.replace(other).is_some() {
                    return Err(format!("unexpected extra argument {other:?}\n{USAGE}"));
                }
            }
        }
    }
    let trace_path = trace_path.ok_or(USAGE)?;
    let mut trace = Trace::load(std::path::Path::new(trace_path))?;
    if tenant.is_some() || between.is_some() {
        trace = query::filter(&trace, tenant, between);
    }
    if actions.is_empty() {
        actions.push(Action::Summary);
    }
    for action in actions {
        match action {
            Action::Summary => print!("{}", query::summary(&trace)),
            Action::Follow { flow, pseq } => print!("{}", query::follow(&trace, flow, pseq)),
            Action::Diff { other } => {
                let b = Trace::load(std::path::Path::new(&other))?;
                print!("{}", query::diff(&trace, &b));
            }
            Action::TopTrimmed { n } => print!("{}", query::top_trimmed(&trace, n)),
            Action::Jsonl { out } => {
                std::fs::write(&out, trace.to_jsonl()).map_err(|e| format!("write {out}: {e}"))?;
                println!("wrote {} lines to {out}", trace.records.len());
            }
        }
    }
    Ok(())
}

enum Action {
    Summary,
    Follow { flow: u64, pseq: u64 },
    Diff { other: String },
    TopTrimmed { n: usize },
    Jsonl { out: String },
}

/// Parses `FLOW:SEQ`; FLOW accepts decimal or `0x` hex (flows print as hex).
fn parse_follow(spec: &str) -> Result<(u64, u64), String> {
    let (flow, pseq) = spec
        .split_once(':')
        .ok_or_else(|| format!("--follow: expected FLOW:SEQ, got {spec:?}"))?;
    let flow = parse_u64(flow).map_err(|e| format!("--follow flow: {e}"))?;
    let pseq = parse_u64(pseq).map_err(|e| format!("--follow seq: {e}"))?;
    Ok((flow, pseq))
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("bad number {s:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn follow_spec_parses_hex_and_decimal() {
        assert_eq!(parse_follow("0x5249:12").unwrap(), (0x5249, 12));
        assert_eq!(parse_follow("16:0x10").unwrap(), (16, 16));
        assert!(parse_follow("nope").is_err());
        assert!(parse_follow("1:x").is_err());
    }

    #[test]
    fn bad_invocations_error_with_usage() {
        assert!(run(&[]).is_err());
        assert!(run(&["frobnicate".into()]).is_err());
        assert!(run(&["query".into()]).is_err());
        assert!(run(&["query".into(), "--follow".into()]).is_err());
        assert!(run(&["query".into(), "/no/such/trace.bin".into()]).is_err());
    }

    #[test]
    fn filter_flags_are_validated_before_load() {
        // Bad tenant spec and inverted window fail regardless of the file.
        assert!(run(&["query".into(), "t.bin".into(), "--tenant".into()]).is_err());
        let e = run(&[
            "query".into(),
            "t.bin".into(),
            "--tenant".into(),
            "tenant.job".into(),
        ])
        .unwrap_err();
        assert!(e.contains("job index"), "{e}");
        let e = run(&[
            "query".into(),
            "t.bin".into(),
            "--between".into(),
            "500".into(),
            "100".into(),
        ])
        .unwrap_err();
        assert!(e.contains("after"), "{e}");
        assert!(run(&[
            "query".into(),
            "t.bin".into(),
            "--between".into(),
            "1".into()
        ])
        .is_err());
    }
}
