//! Trace queries: the logic behind `trimgrad-trace query`.
//!
//! Each query takes a loaded [`Trace`] and renders a deterministic plain-text
//! report (stable ordering, no wall-clock anything), so query output can be
//! asserted in tests and diffed across CI runs.

use crate::event::TraceEvent;
use crate::sink::{Record, Trace};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Per-kind event counts plus flow/row aggregates.
#[must_use]
pub fn summary(trace: &Trace) -> String {
    let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut flows: BTreeMap<u64, FlowAgg> = BTreeMap::new();
    let mut rows_lost: u64 = 0;
    let mut rows_decoded: u64 = 0;
    for rec in &trace.records {
        *by_kind.entry(rec.event.kind_name()).or_insert(0) += 1;
        if let Some(flow) = rec.event.flow() {
            let agg = flows.entry(flow).or_default();
            match &rec.event {
                TraceEvent::PktSent { .. } => agg.sent += 1,
                TraceEvent::PktTrimmed { .. } => agg.trimmed += 1,
                TraceEvent::PktDropped { .. } => agg.dropped += 1,
                TraceEvent::PktDelivered { .. } => agg.delivered += 1,
                _ => {}
            }
        }
        if let TraceEvent::RowDecoded { lost, .. } = rec.event {
            rows_decoded += 1;
            rows_lost += u64::from(lost);
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events ({} evicted by ring)",
        trace.records.len(),
        trace.dropped_oldest
    );
    if let (Some(first), Some(last)) = (trace.records.first(), trace.records.last()) {
        let _ = writeln!(out, "time: {}ns .. {}ns", first.at, last.at);
    }
    let _ = writeln!(out, "events by kind:");
    for (kind, n) in &by_kind {
        let _ = writeln!(out, "  {kind:<14} {n}");
    }
    if !flows.is_empty() {
        let _ = writeln!(out, "flows:");
        for (flow, agg) in &flows {
            let _ = writeln!(
                out,
                "  flow {flow:#x}: sent {} trimmed {} dropped {} delivered {}",
                agg.sent, agg.trimmed, agg.dropped, agg.delivered
            );
        }
    }
    if rows_decoded > 0 {
        let _ = writeln!(
            out,
            "rows decoded: {rows_decoded} (coords lost to trimming: {rows_lost})"
        );
    }
    out
}

#[derive(Default)]
struct FlowAgg {
    sent: u64,
    trimmed: u64,
    dropped: u64,
    delivered: u64,
}

/// The records describing one packet's life: every packet-lifecycle event
/// matching `flow` and `pseq`, in emission order.
#[must_use]
pub fn follow_records(trace: &Trace, flow: u64, pseq: u64) -> Vec<&Record> {
    trace
        .records
        .iter()
        .filter(|r| r.event.flow() == Some(flow) && r.event.pkt_seq() == Some(pseq))
        .collect()
}

/// Renders one packet's end-to-end path as a timeline.
#[must_use]
pub fn follow(trace: &Trace, flow: u64, pseq: u64) -> String {
    let recs = follow_records(trace, flow, pseq);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "packet flow={flow:#x} seq={pseq}: {} events",
        recs.len()
    );
    for rec in recs {
        let _ = write!(out, "  [{:>12}ns] ", rec.at);
        match &rec.event {
            TraceEvent::PktSent {
                node, pkt, size, ..
            } => {
                let _ = writeln!(out, "sent       host {node} (pkt {pkt}, {size}B)");
            }
            TraceEvent::PktEnqueued {
                node,
                to,
                size,
                prio,
                ..
            } => {
                let q = if *prio { "prio" } else { "data" };
                let _ = writeln!(out, "enqueued   {node}->{to} {q} queue ({size}B)");
            }
            TraceEvent::PktTrimmed {
                node,
                to,
                old_size,
                new_size,
                ..
            } => {
                let _ = writeln!(out, "trimmed    {node}->{to} {old_size}B -> {new_size}B");
            }
            TraceEvent::PktDropped {
                node, to, reason, ..
            } => {
                let _ = writeln!(out, "dropped    {node}->{to} ({})", reason.name());
            }
            TraceEvent::PktDelivered {
                node,
                size,
                trimmed,
                ..
            } => {
                let t = if *trimmed { " [trimmed]" } else { "" };
                let _ = writeln!(out, "delivered  host {node} ({size}B){t}");
            }
            TraceEvent::FaultInjected { node, to, pkt, .. } => {
                let _ = writeln!(out, "fault-dup  {node}->{to} (clone of pkt {pkt})");
            }
            other => {
                let _ = writeln!(out, "{}", other.kind_name());
            }
        }
    }
    out
}

/// Resolves a `--tenant` spec to the tenant key compared against
/// `flow >> 32`. A bare number (decimal or `0x` hex) is the key itself; a
/// scope name with a trailing index (`tenant.job2`) maps to index + 1, the
/// fleet convention `flow_base = (tenant + 1) << 32`.
///
/// # Errors
///
/// The spec is neither a number nor ends in a tenant index.
pub fn tenant_key(spec: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = spec.strip_prefix("0x").or_else(|| spec.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        spec.parse().ok()
    };
    if let Some(key) = parsed {
        return Ok(key);
    }
    let digits: String = spec
        .chars()
        .rev()
        .take_while(char::is_ascii_digit)
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect();
    let idx: u64 = digits
        .parse()
        .map_err(|_| format!("--tenant: {spec:?} is neither a key nor ends in a job index"))?;
    Ok(idx + 1)
}

/// A filtered copy of the trace: only records inside the `[t0, t1]`
/// sim-time window (when given) whose flow belongs to `tenant` (when
/// given). Tenant filtering drops flow-less records (row codec events,
/// step markers) — they carry no flow to attribute. `dropped_oldest` is
/// preserved so the summary still reports ring evictions.
#[must_use]
pub fn filter(trace: &Trace, tenant: Option<u64>, between: Option<(u64, u64)>) -> Trace {
    let records = trace
        .records
        .iter()
        .filter(|r| between.is_none_or(|(t0, t1)| r.at >= t0 && r.at <= t1))
        .filter(|r| tenant.is_none_or(|key| r.event.flow().map(|f| f >> 32) == Some(key)))
        .cloned()
        .collect();
    Trace {
        records,
        dropped_oldest: trace.dropped_oldest,
    }
}

/// Compares two traces: per-kind count deltas, then the first record where
/// the sequences diverge.
#[must_use]
pub fn diff(a: &Trace, b: &Trace) -> String {
    let mut out = String::new();
    if a == b {
        let _ = writeln!(out, "traces identical ({} events)", a.records.len());
        return out;
    }
    let count = |t: &Trace| {
        let mut m: BTreeMap<&'static str, i64> = BTreeMap::new();
        for rec in &t.records {
            *m.entry(rec.event.kind_name()).or_insert(0) += 1;
        }
        m
    };
    let ca = count(a);
    let cb = count(b);
    let mut kinds: Vec<&&str> = ca.keys().chain(cb.keys()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    let _ = writeln!(
        out,
        "traces differ: {} vs {} events",
        a.records.len(),
        b.records.len()
    );
    for kind in kinds {
        let na = ca.get(*kind).copied().unwrap_or(0);
        let nb = cb.get(*kind).copied().unwrap_or(0);
        if na != nb {
            let _ = writeln!(out, "  {kind:<14} {na} vs {nb} ({:+})", nb - na);
        }
    }
    let first_div = a
        .records
        .iter()
        .zip(&b.records)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| a.records.len().min(b.records.len()));
    let _ = writeln!(out, "first divergence at record {first_div}:");
    for (label, t) in [("A", a), ("B", b)] {
        match t.records.get(first_div) {
            Some(rec) => {
                let _ = writeln!(
                    out,
                    "  {label}: seq {} at {}ns {:?}",
                    rec.seq, rec.at, rec.event
                );
            }
            None => {
                let _ = writeln!(out, "  {label}: <end of trace>");
            }
        }
    }
    out
}

/// The `n` decoded rows that lost the most coordinates to trimming
/// (ties broken by ascending `(msg, row)` for determinism).
#[must_use]
pub fn top_trimmed(trace: &Trace, n: usize) -> String {
    let mut rows: Vec<(u32, u32, u32, u32)> = trace
        .records
        .iter()
        .filter_map(|r| match r.event {
            TraceEvent::RowDecoded {
                msg,
                row,
                coords,
                lost,
            } => Some((lost, msg, row, coords)),
            _ => None,
        })
        .collect();
    rows.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut out = String::new();
    let _ = writeln!(out, "top {} trimmed rows (of {} decoded):", n, rows.len());
    for (lost, msg, row, coords) in rows.iter().take(n) {
        let _ = writeln!(
            out,
            "  msg {msg} row {row}: lost {lost} coords (recovered {coords})"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::DropReason;

    fn rec(seq: u64, at: u64, event: TraceEvent) -> Record {
        Record { seq, at, event }
    }

    fn packet_story() -> Trace {
        Trace {
            records: vec![
                rec(
                    0,
                    100,
                    TraceEvent::PktSent {
                        node: 0,
                        flow: 0x10,
                        pseq: 7,
                        pkt: 42,
                        size: 1500,
                    },
                ),
                rec(
                    1,
                    150,
                    TraceEvent::PktTrimmed {
                        node: 4,
                        to: 1,
                        flow: 0x10,
                        pseq: 7,
                        pkt: 42,
                        old_size: 1500,
                        new_size: 78,
                    },
                ),
                rec(
                    2,
                    160,
                    TraceEvent::PktSent {
                        node: 0,
                        flow: 0x10,
                        pseq: 8,
                        pkt: 43,
                        size: 1500,
                    },
                ),
                rec(
                    3,
                    180,
                    TraceEvent::PktDropped {
                        node: 4,
                        to: 1,
                        flow: 0x10,
                        pseq: 8,
                        pkt: 43,
                        reason: DropReason::Random,
                    },
                ),
                rec(
                    4,
                    200,
                    TraceEvent::PktDelivered {
                        node: 1,
                        flow: 0x10,
                        pseq: 7,
                        pkt: 42,
                        size: 78,
                        trimmed: true,
                    },
                ),
                rec(
                    5,
                    210,
                    TraceEvent::RowDecoded {
                        msg: 1,
                        row: 3,
                        coords: 100,
                        lost: 924,
                    },
                ),
                rec(
                    6,
                    211,
                    TraceEvent::RowDecoded {
                        msg: 1,
                        row: 5,
                        coords: 1000,
                        lost: 24,
                    },
                ),
            ],
            dropped_oldest: 0,
        }
    }

    #[test]
    fn follow_reconstructs_one_packets_path() {
        let t = packet_story();
        let recs = follow_records(&t, 0x10, 7);
        assert_eq!(recs.len(), 3);
        let text = follow(&t, 0x10, 7);
        assert!(text.contains("sent"), "{text}");
        assert!(text.contains("1500B -> 78B"), "{text}");
        assert!(text.contains("[trimmed]"), "{text}");
        assert!(!text.contains("dropped"), "other packet excluded: {text}");
    }

    #[test]
    fn summary_counts_kinds_and_flows() {
        let text = summary(&packet_story());
        assert!(text.contains("7 events"), "{text}");
        assert!(text.contains("pkt.sent       2"), "{text}");
        assert!(
            text.contains("flow 0x10: sent 2 trimmed 1 dropped 1 delivered 1"),
            "{text}"
        );
        assert!(text.contains("coords lost to trimming: 948"), "{text}");
    }

    #[test]
    fn diff_reports_identical_and_divergent() {
        let a = packet_story();
        assert!(diff(&a, &a).contains("identical"));
        let mut b = packet_story();
        b.records.remove(3);
        for (i, r) in b.records.iter_mut().enumerate() {
            r.seq = i as u64;
        }
        let text = diff(&a, &b);
        assert!(text.contains("7 vs 6 events"), "{text}");
        assert!(text.contains("pkt.dropped    1 vs 0 (-1)"), "{text}");
        assert!(text.contains("first divergence at record 3"), "{text}");
    }

    #[test]
    fn top_trimmed_orders_by_loss() {
        let text = top_trimmed(&packet_story(), 1);
        assert!(
            text.contains("top 1 trimmed rows (of 2 decoded):"),
            "{text}"
        );
        assert!(text.contains("msg 1 row 3: lost 924"), "{text}");
        assert!(!text.contains("row 5"), "{text}");
    }

    #[test]
    fn tenant_key_accepts_numbers_and_scope_names() {
        assert_eq!(tenant_key("3").unwrap(), 3);
        assert_eq!(tenant_key("0x10").unwrap(), 16);
        assert_eq!(tenant_key("tenant.job0").unwrap(), 1);
        assert_eq!(tenant_key("tenant.job12").unwrap(), 13);
        assert!(tenant_key("tenant.job").is_err());
        assert!(tenant_key("").is_err());
    }

    #[test]
    fn filter_applies_time_window_and_tenant() {
        let mut t = packet_story();
        // Give the delivered record a second-tenant flow.
        t.records[4].event = TraceEvent::PktDelivered {
            node: 1,
            flow: (2 << 32) + 0x5249_0000,
            pseq: 7,
            pkt: 42,
            size: 78,
            trimmed: true,
        };
        let windowed = filter(&t, None, Some((150, 200)));
        assert_eq!(windowed.records.len(), 4, "{windowed:?}");
        assert!(windowed.records.iter().all(|r| (150..=200).contains(&r.at)));
        // packet_story flows are 0x10 (< 2^32): tenant key 0.
        let tenant0 = filter(&t, Some(0), None);
        assert_eq!(tenant0.records.len(), 4, "row events dropped: {tenant0:?}");
        let tenant2 = filter(&t, Some(2), None);
        assert_eq!(tenant2.records.len(), 1);
        let both = filter(&t, Some(0), Some((150, 200)));
        assert_eq!(both.records.len(), 3);
        assert_eq!(both.dropped_oldest, t.dropped_oldest);
    }

    #[test]
    fn empty_trace_queries_do_not_panic() {
        let t = Trace::default();
        assert!(summary(&t).contains("0 events"));
        assert!(follow(&t, 1, 1).contains("0 events"));
        assert!(top_trimmed(&t, 5).contains("of 0 decoded"));
    }
}
