//! Trace serialization: the `TGTRACE1` binary format and a JSONL mirror.
//!
//! The binary format is the canonical artifact (what determinism tests hash
//! and what the query CLI loads); the JSONL mirror exists so a trace can be
//! grepped or fed to ad-hoc tooling without this crate. Both serializers are
//! byte-deterministic: records are written in ring-buffer order with
//! little-endian fixed-width fields and length-prefixed names, and floats are
//! stored as their IEEE-754 bit patterns.

use crate::event::{DropReason, TraceEvent};
use std::borrow::Cow;

/// File magic of the binary format (8 bytes, version baked in).
pub const MAGIC: &[u8; 8] = b"TGTRACE1";

/// One recorded event: monotone per-tracer sequence, sim-time stamp
/// (nanoseconds; 0 for events raised outside a simulation), and the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Emission order within the tracer (monotone, gap-free before the ring
    /// buffer wraps).
    pub seq: u64,
    /// Simulated time in nanoseconds.
    pub at: u64,
    /// The event.
    pub event: TraceEvent,
}

/// An owned trace: what a [`crate::Tracer`] snapshot produces and what the
/// query CLI loads back from disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Records in emission order.
    pub records: Vec<Record>,
    /// Events overwritten by the bounded ring buffer before this snapshot.
    pub dropped_oldest: u64,
}

impl Trace {
    /// Serializes to the binary format.
    #[must_use]
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.records.len() * 48);
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.dropped_oldest);
        put_u64(&mut out, self.records.len() as u64);
        for rec in &self.records {
            put_u64(&mut out, rec.seq);
            put_u64(&mut out, rec.at);
            write_event(&mut out, &rec.event);
        }
        out
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (bad magic,
    /// truncation, unknown tag).
    pub fn from_binary(bytes: &[u8]) -> Result<Self, String> {
        let mut r = Reader { bytes, pos: 0 };
        let magic = r.take(8)?;
        if magic != MAGIC {
            return Err(format!("bad magic {magic:?}; not a TGTRACE1 file"));
        }
        let dropped_oldest = r.u64()?;
        let count = r.u64()?;
        let mut records = Vec::new();
        for _ in 0..count {
            let seq = r.u64()?;
            let at = r.u64()?;
            let event = read_event(&mut r)?;
            records.push(Record { seq, at, event });
        }
        if r.pos != bytes.len() {
            return Err(format!(
                "{} trailing bytes after last record",
                bytes.len() - r.pos
            ));
        }
        Ok(Self {
            records,
            dropped_oldest,
        })
    }

    /// Reads and parses a binary trace file.
    ///
    /// # Errors
    ///
    /// I/O failures and the parse errors of [`Trace::from_binary`].
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_binary(&bytes)
    }

    /// Renders the JSONL mirror: one object per line, `kind` holding the
    /// dot-separated event name.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut s = String::new();
        for rec in &self.records {
            jsonl_line(&mut s, rec);
            s.push('\n');
        }
        s
    }
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_name(out: &mut Vec<u8>, name: &str) {
    let len = u16::try_from(name.len()).unwrap_or(u16::MAX);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&name.as_bytes()[..usize::from(len)]);
}

#[allow(clippy::too_many_lines)]
fn write_event(out: &mut Vec<u8>, ev: &TraceEvent) {
    match ev {
        TraceEvent::PktSent {
            node,
            flow,
            pseq,
            pkt,
            size,
        } => {
            out.push(1);
            put_u32(out, *node);
            put_u64(out, *flow);
            put_u64(out, *pseq);
            put_u64(out, *pkt);
            put_u32(out, *size);
        }
        TraceEvent::PktEnqueued {
            node,
            to,
            flow,
            pseq,
            pkt,
            size,
            prio,
        } => {
            out.push(2);
            put_u32(out, *node);
            put_u32(out, *to);
            put_u64(out, *flow);
            put_u64(out, *pseq);
            put_u64(out, *pkt);
            put_u32(out, *size);
            out.push(u8::from(*prio));
        }
        TraceEvent::PktTrimmed {
            node,
            to,
            flow,
            pseq,
            pkt,
            old_size,
            new_size,
        } => {
            out.push(3);
            put_u32(out, *node);
            put_u32(out, *to);
            put_u64(out, *flow);
            put_u64(out, *pseq);
            put_u64(out, *pkt);
            put_u32(out, *old_size);
            put_u32(out, *new_size);
        }
        TraceEvent::PktDropped {
            node,
            to,
            flow,
            pseq,
            pkt,
            reason,
        } => {
            out.push(4);
            put_u32(out, *node);
            put_u32(out, *to);
            put_u64(out, *flow);
            put_u64(out, *pseq);
            put_u64(out, *pkt);
            out.push(reason.to_tag());
        }
        TraceEvent::PktDelivered {
            node,
            flow,
            pseq,
            pkt,
            size,
            trimmed,
        } => {
            out.push(5);
            put_u32(out, *node);
            put_u64(out, *flow);
            put_u64(out, *pseq);
            put_u64(out, *pkt);
            put_u32(out, *size);
            out.push(u8::from(*trimmed));
        }
        TraceEvent::FaultInjected {
            node,
            to,
            flow,
            pseq,
            pkt,
        } => {
            out.push(6);
            put_u32(out, *node);
            put_u32(out, *to);
            put_u64(out, *flow);
            put_u64(out, *pseq);
            put_u64(out, *pkt);
        }
        TraceEvent::RowEncoded {
            msg,
            row,
            packets,
            bytes,
        } => {
            out.push(7);
            put_u32(out, *msg);
            put_u32(out, *row);
            put_u32(out, *packets);
            put_u64(out, *bytes);
        }
        TraceEvent::RowAssembled { msg, row, coords } => {
            out.push(8);
            put_u32(out, *msg);
            put_u32(out, *row);
            put_u32(out, *coords);
        }
        TraceEvent::RowDecoded {
            msg,
            row,
            coords,
            lost,
        } => {
            out.push(9);
            put_u32(out, *msg);
            put_u32(out, *row);
            put_u32(out, *coords);
            put_u32(out, *lost);
        }
        TraceEvent::StepStarted { rank, step, reduce } => {
            out.push(10);
            put_u32(out, *rank);
            put_u32(out, *step);
            out.push(u8::from(*reduce));
        }
        TraceEvent::StepApplied { rank, step } => {
            out.push(11);
            put_u32(out, *rank);
            put_u32(out, *step);
        }
        TraceEvent::EpochTick { epoch, loss, top1 } => {
            out.push(12);
            put_u32(out, *epoch);
            put_u64(out, loss.to_bits());
            put_u64(out, top1.to_bits());
        }
        TraceEvent::SpanEnter { name } => {
            out.push(13);
            put_name(out, name);
        }
        TraceEvent::SpanExit { name, events } => {
            out.push(14);
            put_name(out, name);
            put_u64(out, *events);
        }
        TraceEvent::Mark { name, value } => {
            out.push(15);
            put_name(out, name);
            put_u64(out, *value);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| format!("truncated trace at byte {}", self.pos))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn name(&mut self) -> Result<Cow<'static, str>, String> {
        let b = self.take(2)?;
        let len = usize::from(u16::from_le_bytes([b[0], b[1]]));
        let raw = self.take(len)?;
        let s = std::str::from_utf8(raw).map_err(|e| format!("non-UTF-8 name: {e}"))?;
        Ok(Cow::Owned(s.to_string()))
    }
}

fn read_event(r: &mut Reader<'_>) -> Result<TraceEvent, String> {
    Ok(match r.u8()? {
        1 => TraceEvent::PktSent {
            node: r.u32()?,
            flow: r.u64()?,
            pseq: r.u64()?,
            pkt: r.u64()?,
            size: r.u32()?,
        },
        2 => TraceEvent::PktEnqueued {
            node: r.u32()?,
            to: r.u32()?,
            flow: r.u64()?,
            pseq: r.u64()?,
            pkt: r.u64()?,
            size: r.u32()?,
            prio: r.u8()? != 0,
        },
        3 => TraceEvent::PktTrimmed {
            node: r.u32()?,
            to: r.u32()?,
            flow: r.u64()?,
            pseq: r.u64()?,
            pkt: r.u64()?,
            old_size: r.u32()?,
            new_size: r.u32()?,
        },
        4 => TraceEvent::PktDropped {
            node: r.u32()?,
            to: r.u32()?,
            flow: r.u64()?,
            pseq: r.u64()?,
            pkt: r.u64()?,
            reason: DropReason::from_tag(r.u8()?)?,
        },
        5 => TraceEvent::PktDelivered {
            node: r.u32()?,
            flow: r.u64()?,
            pseq: r.u64()?,
            pkt: r.u64()?,
            size: r.u32()?,
            trimmed: r.u8()? != 0,
        },
        6 => TraceEvent::FaultInjected {
            node: r.u32()?,
            to: r.u32()?,
            flow: r.u64()?,
            pseq: r.u64()?,
            pkt: r.u64()?,
        },
        7 => TraceEvent::RowEncoded {
            msg: r.u32()?,
            row: r.u32()?,
            packets: r.u32()?,
            bytes: r.u64()?,
        },
        8 => TraceEvent::RowAssembled {
            msg: r.u32()?,
            row: r.u32()?,
            coords: r.u32()?,
        },
        9 => TraceEvent::RowDecoded {
            msg: r.u32()?,
            row: r.u32()?,
            coords: r.u32()?,
            lost: r.u32()?,
        },
        10 => TraceEvent::StepStarted {
            rank: r.u32()?,
            step: r.u32()?,
            reduce: r.u8()? != 0,
        },
        11 => TraceEvent::StepApplied {
            rank: r.u32()?,
            step: r.u32()?,
        },
        12 => TraceEvent::EpochTick {
            epoch: r.u32()?,
            loss: f64::from_bits(r.u64()?),
            top1: f64::from_bits(r.u64()?),
        },
        13 => TraceEvent::SpanEnter { name: r.name()? },
        14 => TraceEvent::SpanExit {
            name: r.name()?,
            events: r.u64()?,
        },
        15 => TraceEvent::Mark {
            name: r.name()?,
            value: r.u64()?,
        },
        other => return Err(format!("unknown event tag {other}")),
    })
}

/// Escapes a string for a JSON literal (names are `[a-z0-9_.]`, so only
/// quotes and backslashes need care; keep it total anyway).
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[allow(clippy::too_many_lines)]
fn jsonl_line(s: &mut String, rec: &Record) {
    use std::fmt::Write as _;
    let _ = write!(
        s,
        "{{\"seq\":{},\"at\":{},\"kind\":\"{}\"",
        rec.seq,
        rec.at,
        rec.event.kind_name()
    );
    let _ = match &rec.event {
        TraceEvent::PktSent {
            node,
            flow,
            pseq,
            pkt,
            size,
        } => write!(
            s,
            ",\"node\":{node},\"flow\":{flow},\"pseq\":{pseq},\"pkt\":{pkt},\"size\":{size}"
        ),
        TraceEvent::PktEnqueued {
            node,
            to,
            flow,
            pseq,
            pkt,
            size,
            prio,
        } => write!(
            s,
            ",\"node\":{node},\"to\":{to},\"flow\":{flow},\"pseq\":{pseq},\"pkt\":{pkt},\
             \"size\":{size},\"prio\":{prio}"
        ),
        TraceEvent::PktTrimmed {
            node,
            to,
            flow,
            pseq,
            pkt,
            old_size,
            new_size,
        } => write!(
            s,
            ",\"node\":{node},\"to\":{to},\"flow\":{flow},\"pseq\":{pseq},\"pkt\":{pkt},\
             \"old_size\":{old_size},\"new_size\":{new_size}"
        ),
        TraceEvent::PktDropped {
            node,
            to,
            flow,
            pseq,
            pkt,
            reason,
        } => write!(
            s,
            ",\"node\":{node},\"to\":{to},\"flow\":{flow},\"pseq\":{pseq},\"pkt\":{pkt},\
             \"reason\":\"{}\"",
            reason.name()
        ),
        TraceEvent::PktDelivered {
            node,
            flow,
            pseq,
            pkt,
            size,
            trimmed,
        } => write!(
            s,
            ",\"node\":{node},\"flow\":{flow},\"pseq\":{pseq},\"pkt\":{pkt},\"size\":{size},\
             \"trimmed\":{trimmed}"
        ),
        TraceEvent::FaultInjected {
            node,
            to,
            flow,
            pseq,
            pkt,
        } => write!(
            s,
            ",\"node\":{node},\"to\":{to},\"flow\":{flow},\"pseq\":{pseq},\"pkt\":{pkt}"
        ),
        TraceEvent::RowEncoded {
            msg,
            row,
            packets,
            bytes,
        } => write!(
            s,
            ",\"msg\":{msg},\"row\":{row},\"packets\":{packets},\"bytes\":{bytes}"
        ),
        TraceEvent::RowAssembled { msg, row, coords } => {
            write!(s, ",\"msg\":{msg},\"row\":{row},\"coords\":{coords}")
        }
        TraceEvent::RowDecoded {
            msg,
            row,
            coords,
            lost,
        } => write!(
            s,
            ",\"msg\":{msg},\"row\":{row},\"coords\":{coords},\"lost\":{lost}"
        ),
        TraceEvent::StepStarted { rank, step, reduce } => {
            write!(s, ",\"rank\":{rank},\"step\":{step},\"reduce\":{reduce}")
        }
        TraceEvent::StepApplied { rank, step } => write!(s, ",\"rank\":{rank},\"step\":{step}"),
        TraceEvent::EpochTick { epoch, loss, top1 } => {
            write!(s, ",\"epoch\":{epoch},\"loss\":{loss},\"top1\":{top1}")
        }
        TraceEvent::SpanEnter { name } => write!(s, ",\"name\":\"{}\"", esc(name)),
        TraceEvent::SpanExit { name, events } => {
            write!(s, ",\"name\":\"{}\",\"events\":{events}", esc(name))
        }
        TraceEvent::Mark { name, value } => {
            write!(s, ",\"name\":\"{}\",\"value\":{value}", esc(name))
        }
    };
    s.push('}');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::samples;

    fn sample_trace() -> Trace {
        Trace {
            records: samples()
                .into_iter()
                .enumerate()
                .map(|(i, event)| Record {
                    seq: i as u64,
                    at: i as u64 * 100,
                    event,
                })
                .collect(),
            dropped_oldest: 3,
        }
    }

    #[test]
    fn binary_roundtrips_every_variant() {
        let t = sample_trace();
        let bytes = t.to_binary();
        assert_eq!(&bytes[..8], MAGIC);
        let back = Trace::from_binary(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn binary_serialization_is_deterministic() {
        let t = sample_trace();
        assert_eq!(t.to_binary(), t.to_binary());
        assert_eq!(t.to_jsonl(), t.to_jsonl());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_binary(b"not a trace").is_err());
        let mut bytes = sample_trace().to_binary();
        bytes.truncate(bytes.len() - 1);
        assert!(Trace::from_binary(&bytes).is_err(), "truncation detected");
        let mut extra = sample_trace().to_binary();
        extra.push(0);
        assert!(
            Trace::from_binary(&extra).is_err(),
            "trailing bytes detected"
        );
    }

    #[test]
    fn jsonl_lines_are_balanced_objects() {
        let jsonl = sample_trace().to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), samples().len());
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert_eq!(line.matches('{').count(), line.matches('}').count());
            assert!(line.contains("\"kind\":\""), "{line}");
            // Keys are quoted and values never contain raw control chars.
            assert!(!line.contains('\n'));
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace::default();
        assert_eq!(Trace::from_binary(&t.to_binary()).unwrap(), t);
        assert_eq!(t.to_jsonl(), "");
    }
}
