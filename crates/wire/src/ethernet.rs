//! Ethernet II frame view.
//!
//! ```text
//!  0               6              12      14
//! ┌───────────────┬───────────────┬───────┬─────────
//! │ dst MAC       │ src MAC       │ type  │ payload…
//! └───────────────┴───────────────┴───────┴─────────
//! ```
//!
//! Gradient traffic uses EtherType [`ETHERTYPE_IPV4`]; the frame type is
//! generic so the simulator can carry cross-traffic through the same code.

use crate::{Result, WireError};

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A deterministic locally-administered unicast address for host `id`
    /// (used by the simulator's topology builder).
    #[must_use]
    pub fn for_host(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// Whether this is the broadcast address.
    #[must_use]
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }
}

impl core::fmt::Display for MacAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

/// Ethernet II header length in bytes.
pub const HEADER_LEN: usize = 14;

/// A typed view over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, validating there is room for the header.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] if the buffer is shorter than 14 bytes.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Destination MAC.
    #[must_use]
    pub fn dst(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[0], b[1], b[2], b[3], b[4], b[5]])
    }

    /// Source MAC.
    #[must_use]
    pub fn src(&self) -> MacAddr {
        let b = self.buffer.as_ref();
        MacAddr([b[6], b[7], b[8], b[9], b[10], b[11]])
    }

    /// EtherType.
    #[must_use]
    pub fn ethertype(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[12], b[13]])
    }

    /// The payload after the header.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC.
    pub fn set_dst(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[0..6].copy_from_slice(&mac.0);
    }

    /// Sets the source MAC.
    pub fn set_src(&mut self, mac: MacAddr) {
        self.buffer.as_mut()[6..12].copy_from_slice(&mac.0);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ty: u16) {
        self.buffer.as_mut()[12..14].copy_from_slice(&ty.to_be_bytes());
    }

    /// Mutable access to the payload.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

/// Builds a complete frame: header plus `payload`.
#[must_use]
pub fn build_frame(dst: MacAddr, src: MacAddr, ethertype: u16, payload: &[u8]) -> Vec<u8> {
    let mut buf = vec![0u8; HEADER_LEN + payload.len()];
    // Same-module construction: the buffer is sized for the header above, so
    // the `new_checked` length test cannot fail — skip the fallible path.
    let mut frame = EthernetFrame {
        buffer: &mut buf[..],
    };
    frame.set_dst(dst);
    frame.set_src(src);
    frame.set_ethertype(ethertype);
    frame.payload_mut().copy_from_slice(payload);
    buf
}

/// Writes the 14-byte header into the front of `buf` — the in-place form of
/// [`build_frame`] for recycled frame buffers. Every header byte is
/// overwritten; the payload region is the caller's to fill.
///
/// # Panics
///
/// Panics if `buf` is shorter than [`HEADER_LEN`].
pub fn write_header(buf: &mut [u8], dst: MacAddr, src: MacAddr, ethertype: u16) {
    assert!(
        buf.len() >= HEADER_LEN,
        "buffer too short for Ethernet header"
    );
    // Same-module construction: length checked above, skip the fallible path.
    let mut frame = EthernetFrame { buffer: buf };
    frame.set_dst(dst);
    frame.set_src(src);
    frame.set_ethertype(ethertype);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_display_and_broadcast() {
        assert_eq!(
            MacAddr([1, 2, 3, 0xAB, 0xCD, 0xEF]).to_string(),
            "01:02:03:ab:cd:ef"
        );
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(!MacAddr::for_host(1).is_broadcast());
    }

    #[test]
    fn host_macs_are_unique_and_local() {
        let a = MacAddr::for_host(1);
        let b = MacAddr::for_host(2);
        assert_ne!(a, b);
        assert_eq!(a.0[0] & 0x02, 0x02, "locally administered bit");
        assert_eq!(a.0[0] & 0x01, 0, "unicast bit");
    }

    #[test]
    fn build_and_parse_roundtrip() {
        let payload = [0xDE, 0xAD, 0xBE, 0xEF];
        let dst = MacAddr::for_host(7);
        let src = MacAddr::for_host(8);
        let buf = build_frame(dst, src, ETHERTYPE_IPV4, &payload);
        assert_eq!(buf.len(), 18);
        let frame = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(frame.dst(), dst);
        assert_eq!(frame.src(), src);
        assert_eq!(frame.ethertype(), ETHERTYPE_IPV4);
        assert_eq!(frame.payload(), &payload);
    }

    #[test]
    fn rejects_short_buffer() {
        assert_eq!(
            EthernetFrame::new_checked(&[0u8; 13][..]).unwrap_err(),
            WireError::Truncated
        );
        // Exactly header-length is fine (empty payload).
        let f = EthernetFrame::new_checked(&[0u8; 14][..]).unwrap();
        assert!(f.payload().is_empty());
    }

    #[test]
    fn mutation_through_view() {
        let mut buf = [0u8; 20];
        let mut f = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        f.set_ethertype(0x88B5);
        f.payload_mut()[0] = 0x42;
        let f2 = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f2.ethertype(), 0x88B5);
        assert_eq!(f2.payload()[0], 0x42);
    }
}
