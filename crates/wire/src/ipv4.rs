//! IPv4 packet view (fixed 20-byte header, no options).
//!
//! The simulator uses two IPv4 facilities beyond plain delivery:
//!
//! * the **DSCP** field encodes queue priority — trimmed packets are
//!   forwarded high-priority, like NDP headers;
//! * **total length** and the header checksum are patched in place when a
//!   switch trims a packet ([`Ipv4Packet::set_total_len`] +
//!   [`Ipv4Packet::fill_checksum`]).

use crate::{internet_checksum, ones_complement_sum, Result, WireError};

/// A 32-bit IPv4 address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ipv4Addr(pub [u8; 4]);

impl Ipv4Addr {
    /// Deterministic address for simulated host `id`: `10.x.y.z`.
    #[must_use]
    pub fn for_host(id: u32) -> Ipv4Addr {
        let b = id.to_be_bytes();
        Ipv4Addr([10, b[1], b[2], b[3]])
    }

    /// Big-endian `u32` form.
    #[must_use]
    pub fn to_u32(self) -> u32 {
        u32::from_be_bytes(self.0)
    }
}

impl core::fmt::Display for Ipv4Addr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// Header length (no options supported).
pub const HEADER_LEN: usize = 20;

/// DSCP code point used for trimmed (high-priority) gradient headers.
pub const DSCP_TRIMMED: u8 = 46; // Expedited Forwarding

/// DSCP code point for ordinary gradient payload packets.
pub const DSCP_BULK: u8 = 0;

/// ECN codepoint: Congestion Experienced.
pub const ECN_CE: u8 = 0b11;

/// ECN codepoint: ECN-Capable Transport (0).
pub const ECN_ECT0: u8 = 0b10;

/// A typed view over an IPv4 packet (header + payload).
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer, validating version, header length, and that the buffer
    /// holds at least `total_len` bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] for short buffers,
    /// [`WireError::BadField`] for a bad version or IHL.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        if b[0] >> 4 != 4 {
            return Err(WireError::BadField("version"));
        }
        if (b[0] & 0x0F) as usize * 4 != HEADER_LEN {
            return Err(WireError::BadField("ihl"));
        }
        let total = u16::from_be_bytes([b[2], b[3]]) as usize;
        if total < HEADER_LEN || b.len() < total {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Total length field (header + payload, in bytes).
    #[must_use]
    pub fn total_len(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// DSCP (top six bits of the traffic-class byte).
    #[must_use]
    pub fn dscp(&self) -> u8 {
        self.buffer.as_ref()[1] >> 2
    }

    /// ECN (bottom two bits of the traffic-class byte).
    #[must_use]
    pub fn ecn(&self) -> u8 {
        self.buffer.as_ref()[1] & 0b11
    }

    /// Time-to-live.
    #[must_use]
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[8]
    }

    /// Payload protocol number.
    #[must_use]
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[9]
    }

    /// Header checksum field.
    #[must_use]
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[10], b[11]])
    }

    /// Source address.
    #[must_use]
    pub fn src(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[12], b[13], b[14], b[15]])
    }

    /// Destination address.
    #[must_use]
    pub fn dst(&self) -> Ipv4Addr {
        let b = self.buffer.as_ref();
        Ipv4Addr([b[16], b[17], b[18], b[19]])
    }

    /// Verifies the header checksum.
    #[must_use]
    pub fn verify_checksum(&self) -> bool {
        ones_complement_sum(&self.buffer.as_ref()[..HEADER_LEN], 0) == 0xFFFF
    }

    /// The payload (`total_len − 20` bytes).
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[HEADER_LEN..total]
    }

    /// Consumes the view, returning the underlying buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Writes the fixed header fields (version 4, IHL 5, no fragmentation).
    pub fn init(&mut self) {
        let b = self.buffer.as_mut();
        b[0] = 0x45;
        b[1] = 0;
        b[4] = 0; // identification
        b[5] = 0;
        b[6] = 0x40; // don't fragment
        b[7] = 0;
    }

    /// Sets the total length field.
    pub fn set_total_len(&mut self, len: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&len.to_be_bytes());
    }

    /// Sets DSCP, preserving ECN.
    pub fn set_dscp(&mut self, dscp: u8) {
        debug_assert!(dscp < 64);
        let b = self.buffer.as_mut();
        b[1] = (dscp << 2) | (b[1] & 0b11);
    }

    /// Sets ECN, preserving DSCP.
    pub fn set_ecn(&mut self, ecn: u8) {
        debug_assert!(ecn < 4);
        let b = self.buffer.as_mut();
        b[1] = (b[1] & !0b11) | ecn;
    }

    /// Sets TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[8] = ttl;
    }

    /// Sets the payload protocol.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[9] = proto;
    }

    /// Sets source address.
    pub fn set_src(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[12..16].copy_from_slice(&a.0);
    }

    /// Sets destination address.
    pub fn set_dst(&mut self, a: Ipv4Addr) {
        self.buffer.as_mut()[16..20].copy_from_slice(&a.0);
    }

    /// Recomputes and writes the header checksum. Call after any header edit.
    pub fn fill_checksum(&mut self) {
        let b = self.buffer.as_mut();
        b[10] = 0;
        b[11] = 0;
        let csum = internet_checksum(&b[..HEADER_LEN]);
        b[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let total = u16::from_be_bytes([self.buffer.as_ref()[2], self.buffer.as_ref()[3]]) as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..total]
    }
}

/// Builds a complete IPv4 packet around `payload`.
///
/// # Panics
///
/// Panics if the packet would exceed the 16-bit IPv4 total-length field.
#[must_use]
pub fn build_packet(src: Ipv4Addr, dst: Ipv4Addr, proto: u8, dscp: u8, payload: &[u8]) -> Vec<u8> {
    let total = HEADER_LEN + payload.len();
    let total_field = crate::narrow::to_u16(total, "IPv4 total length");
    let mut buf = vec![0u8; total];
    buf[2..4].copy_from_slice(&total_field.to_be_bytes());
    // Same-module construction: the buffer is sized for the header above and
    // `init` writes the version byte, so the fallible `new_checked` path
    // (length + version tests) is not needed here.
    let mut pkt = Ipv4Packet {
        buffer: &mut buf[..],
    };
    pkt.init();
    pkt.set_total_len(total_field);
    pkt.set_dscp(dscp);
    pkt.set_ecn(ECN_ECT0);
    pkt.set_ttl(64);
    pkt.set_protocol(proto);
    pkt.set_src(src);
    pkt.set_dst(dst);
    pkt.payload_mut().copy_from_slice(payload);
    pkt.fill_checksum();
    buf
}

/// Writes a complete 20-byte header (version 4, IHL 5, DF, TTL 64,
/// ECN ECT(0)) with a valid checksum into the front of `buf` — the in-place
/// form of [`build_packet`] for recycled frame buffers. `total_len` counts
/// header plus payload; every header byte is overwritten, so recycled
/// buffers need no zeroing.
///
/// # Panics
///
/// Panics if `buf` is shorter than [`HEADER_LEN`].
pub fn write_header(
    buf: &mut [u8],
    src: Ipv4Addr,
    dst: Ipv4Addr,
    proto: u8,
    dscp: u8,
    total_len: u16,
) {
    assert!(buf.len() >= HEADER_LEN, "buffer too short for IPv4 header");
    // Same-module construction: length checked above and `init` writes the
    // version byte, so the fallible `new_checked` path is not needed.
    let mut pkt = Ipv4Packet { buffer: buf };
    pkt.init();
    pkt.set_total_len(total_len);
    pkt.set_dscp(dscp);
    pkt.set_ecn(ECN_ECT0);
    pkt.set_ttl(64);
    pkt.set_protocol(proto);
    pkt.set_src(src);
    pkt.set_dst(dst);
    pkt.fill_checksum();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_display_and_host_mapping() {
        assert_eq!(Ipv4Addr([10, 0, 0, 7]).to_string(), "10.0.0.7");
        assert_eq!(Ipv4Addr::for_host(7), Ipv4Addr([10, 0, 0, 7]));
        assert_eq!(Ipv4Addr::for_host(0x0102_0304), Ipv4Addr([10, 2, 3, 4]));
        assert_ne!(Ipv4Addr::for_host(1), Ipv4Addr::for_host(2));
    }

    #[test]
    fn build_parse_roundtrip_with_valid_checksum() {
        let payload = [1u8, 2, 3, 4, 5];
        let src = Ipv4Addr::for_host(1);
        let dst = Ipv4Addr::for_host(2);
        let buf = build_packet(src, dst, PROTO_UDP, DSCP_BULK, &payload);
        let pkt = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(pkt.total_len() as usize, 25);
        assert_eq!(pkt.src(), src);
        assert_eq!(pkt.dst(), dst);
        assert_eq!(pkt.protocol(), PROTO_UDP);
        assert_eq!(pkt.ttl(), 64);
        assert_eq!(pkt.dscp(), DSCP_BULK);
        assert_eq!(pkt.ecn(), ECN_ECT0);
        assert_eq!(pkt.payload(), &payload);
        assert!(pkt.verify_checksum());
    }

    #[test]
    fn checksum_detects_corruption() {
        let buf = build_packet(
            Ipv4Addr::for_host(1),
            Ipv4Addr::for_host(2),
            PROTO_UDP,
            0,
            &[0; 8],
        );
        let mut corrupted = buf.clone();
        corrupted[8] ^= 0xFF; // flip TTL bits
        let pkt = Ipv4Packet::new_checked(&corrupted[..]).unwrap();
        assert!(!pkt.verify_checksum());
    }

    #[test]
    fn trim_patch_total_len_and_checksum() {
        // Simulate what a trimming switch does: shorten, re-set length, re-checksum.
        let mut buf = build_packet(
            Ipv4Addr::for_host(3),
            Ipv4Addr::for_host(4),
            PROTO_UDP,
            DSCP_BULK,
            &[0xAA; 100],
        );
        buf.truncate(HEADER_LEN + 10);
        let mut pkt = Ipv4Packet::new_checked(&mut buf[..]).unwrap_err(); // total_len still 120
                                                                          // Must patch length before the view validates.
        let _ = &mut pkt;
        let mut raw = buf;
        raw[2..4].copy_from_slice(&((HEADER_LEN + 10) as u16).to_be_bytes());
        let mut pkt = Ipv4Packet::new_checked(&mut raw[..]).unwrap();
        pkt.set_dscp(DSCP_TRIMMED);
        pkt.fill_checksum();
        let check = Ipv4Packet::new_checked(&raw[..]).unwrap();
        assert!(check.verify_checksum());
        assert_eq!(check.dscp(), DSCP_TRIMMED);
        assert_eq!(check.payload().len(), 10);
    }

    #[test]
    fn ecn_and_dscp_do_not_clobber_each_other() {
        let mut buf = build_packet(
            Ipv4Addr::for_host(1),
            Ipv4Addr::for_host(2),
            PROTO_UDP,
            DSCP_TRIMMED,
            &[],
        );
        let mut pkt = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        pkt.set_ecn(ECN_CE);
        assert_eq!(pkt.dscp(), DSCP_TRIMMED);
        assert_eq!(pkt.ecn(), ECN_CE);
        pkt.set_dscp(0);
        assert_eq!(pkt.ecn(), ECN_CE);
    }

    #[test]
    fn rejects_bad_version_and_short_buffers() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = [0u8; 20];
        buf[0] = 0x65; // version 6
        buf[2..4].copy_from_slice(&20u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField("version")
        );
        buf[0] = 0x46; // IHL 6 (options) unsupported
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField("ihl")
        );
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = [0u8; 20];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&30u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
    }
}
