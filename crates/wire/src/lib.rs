//! Typed wire formats for trimmable gradient packets.
//!
//! Follows the smoltcp idiom: zero-copy *view* types (`Frame<T: AsRef<[u8]>>`)
//! wrap a byte buffer and expose field accessors; emission and parsing are the
//! same type with `AsRef`/`AsMut` bounds. Nothing here allocates except the
//! explicit builders.
//!
//! # Stack
//!
//! ```text
//! ┌──────────────┐ 14 B  [`ethernet`]  EtherType 0x88B5 (local experimental)
//! │ Ethernet II  │
//! ├──────────────┤ 20 B  [`ipv4`]      header checksum, DSCP-based priority
//! │ IPv4         │
//! ├──────────────┤  8 B  [`udp`]       checksum over pseudo-header
//! │ UDP          │
//! ├──────────────┤ 28 B  [`trimhdr`]   scheme, row/chunk ids, coord range,
//! │ TrimGrad     │                     current trim depth
//! ├──────────────┤       [`payload`]   part 0 (heads) … part k−1 (tails),
//! │ payload      │                     each section byte-aligned so a switch
//! └──────────────┘                     trims at a section boundary
//! ```
//!
//! A switch trims a gradient packet by truncating the frame at a *trim point*
//! (a payload section boundary), decrementing the TrimGrad `trim_depth`
//! field, and patching the IPv4/UDP lengths and checksums — see
//! [`packet::GradPacket::trim_to_depth`]. The receiver reassembles rows from
//! any mix of trimmed and untrimmed packets ([`reassemble`]).
//!
//! Row metadata (σ / L / the DRIVE scale `f`) travels in tiny [`meta`]
//! packets that are flagged reliable and never trimmed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ethernet;
pub mod ipv4;
pub mod meta;
pub mod narrow;
pub mod packet;
pub mod packetize;
pub mod payload;
pub mod pool;
pub mod reassemble;
pub mod trimhdr;
pub mod udp;

/// Errors from parsing or emitting wire formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the claimed structure.
    Truncated,
    /// A magic constant did not match.
    BadMagic,
    /// Unsupported protocol/format version.
    BadVersion,
    /// A checksum failed verification.
    BadChecksum,
    /// A field holds an invalid value.
    BadField(&'static str),
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::BadMagic => write!(f, "bad magic"),
            WireError::BadVersion => write!(f, "unsupported version"),
            WireError::BadChecksum => write!(f, "checksum mismatch"),
            WireError::BadField(name) => write!(f, "invalid field: {name}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for this crate.
pub type Result<T> = core::result::Result<T, WireError>;

/// RFC 1071 Internet checksum over `data` (used by IPv4 and UDP).
///
/// Returns the one's-complement of the one's-complement sum; a buffer that
/// *includes* a correct checksum field sums to `0`.
#[must_use]
pub fn internet_checksum(data: &[u8]) -> u16 {
    !ones_complement_sum(data, 0)
}

/// One's-complement 16-bit sum of `data`, folded, starting from `initial`
/// (useful for pseudo-header prefixes). Odd trailing byte is padded with zero.
#[must_use]
pub fn ones_complement_sum(data: &[u8], initial: u16) -> u16 {
    let mut sum: u32 = u32::from(initial);
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum > 0xFFFF {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    sum as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_of_zeroes() {
        assert_eq!(internet_checksum(&[0, 0, 0, 0]), 0xFFFF);
    }

    #[test]
    fn checksum_known_vector() {
        // Classic example from RFC 1071 discussions.
        let data = [0x00u8, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(ones_complement_sum(&data, 0), 0xddf2);
        assert_eq!(internet_checksum(&data), !0xddf2);
    }

    #[test]
    fn checksum_odd_length() {
        let data = [0xFFu8, 0x00, 0xAB];
        // 0xFF00 + 0xAB00 = 0x1AA00 → fold → 0xAA01
        assert_eq!(ones_complement_sum(&data, 0), 0xAA01);
    }

    #[test]
    fn buffer_with_embedded_checksum_verifies_to_zero() {
        let mut data = vec![
            0x45u8, 0x00, 0x00, 0x1c, 0x12, 0x34, 0x00, 0x00, 0x40, 0x11, 0, 0,
        ];
        let csum = internet_checksum(&data);
        data[10] = (csum >> 8) as u8;
        data[11] = (csum & 0xFF) as u8;
        assert_eq!(ones_complement_sum(&data, 0), 0xFFFF);
    }

    #[test]
    fn error_display() {
        assert_eq!(WireError::Truncated.to_string(), "buffer truncated");
        assert_eq!(WireError::BadField("ttl").to_string(), "invalid field: ttl");
    }
}
