//! Reliable row-metadata packets.
//!
//! Each encoded row has a small amount of side data — the scheme-specific
//! scale (σ, `L`, or the DRIVE factor `f`) and the original row length —
//! that the receiver needs even when every data packet of the row was
//! trimmed. The paper sends these "separately in a small packet that will
//! not be trimmed"; here they ride UDP port [`crate::udp::PORT_METADATA`]
//! with the [`crate::trimhdr::FLAG_RELIABLE`] semantics (switches never trim
//! them, transports retransmit them on loss).

use crate::ethernet::{self, ETHERTYPE_IPV4};
use crate::ipv4::{self, Ipv4Packet, PROTO_UDP};
use crate::packet::NetAddrs;
use crate::udp::{self, UdpDatagram, PORT_METADATA};
use crate::{Result, WireError};
use trimgrad_quant::{RowMeta, SchemeId};

/// Metadata payload magic: ASCII "TM".
pub const MAGIC: u16 = 0x544D;

/// Metadata payload length in bytes.
pub const PAYLOAD_LEN: usize = 24;

/// The contents of one metadata packet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowMetaPacket {
    /// Encoding scheme of the row.
    pub scheme: SchemeId,
    /// Collective message id.
    pub msg_id: u32,
    /// Row index within the message.
    pub row_id: u32,
    /// Original (pre-padding) coordinate count.
    pub original_len: u32,
    /// Scheme-specific scale.
    pub scale: f32,
    /// Training epoch (seed context).
    pub epoch: u32,
}

impl RowMetaPacket {
    /// Serializes the metadata payload.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; PAYLOAD_LEN] {
        let mut b = [0u8; PAYLOAD_LEN];
        b[0..2].copy_from_slice(&MAGIC.to_be_bytes());
        b[2] = 1; // version
        b[3] = self.scheme.as_u8();
        b[4..8].copy_from_slice(&self.msg_id.to_be_bytes());
        b[8..12].copy_from_slice(&self.row_id.to_be_bytes());
        b[12..16].copy_from_slice(&self.original_len.to_be_bytes());
        b[16..20].copy_from_slice(&self.scale.to_bits().to_be_bytes());
        b[20..24].copy_from_slice(&self.epoch.to_be_bytes());
        b
    }

    /// Parses a metadata payload.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`], [`WireError::BadMagic`],
    /// [`WireError::BadVersion`], or [`WireError::BadField`] for an unknown
    /// scheme.
    pub fn from_bytes(b: &[u8]) -> Result<Self> {
        if b.len() < PAYLOAD_LEN {
            return Err(WireError::Truncated);
        }
        if u16::from_be_bytes([b[0], b[1]]) != MAGIC {
            return Err(WireError::BadMagic);
        }
        if b[2] != 1 {
            return Err(WireError::BadVersion);
        }
        let scheme = SchemeId::from_u8(b[3]).ok_or(WireError::BadField("scheme"))?;
        Ok(Self {
            scheme,
            msg_id: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            row_id: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
            original_len: u32::from_be_bytes([b[12], b[13], b[14], b[15]]),
            scale: f32::from_bits(u32::from_be_bytes([b[16], b[17], b[18], b[19]])),
            epoch: u32::from_be_bytes([b[20], b[21], b[22], b[23]]),
        })
    }

    /// The quant-layer [`RowMeta`] this packet conveys.
    #[must_use]
    pub fn row_meta(&self) -> RowMeta {
        RowMeta {
            original_len: self.original_len as usize,
            scale: self.scale,
        }
    }

    /// Builds the full Ethernet frame (to [`PORT_METADATA`], bulk DSCP is
    /// irrelevant — the reliable flag lives in the transport contract).
    #[must_use]
    pub fn build_frame(&self, net: &NetAddrs) -> Vec<u8> {
        let udp_bytes = udp::build_datagram(
            net.src_ip,
            net.dst_ip,
            net.src_port,
            PORT_METADATA,
            &self.to_bytes(),
        );
        let ip_bytes = ipv4::build_packet(
            net.src_ip,
            net.dst_ip,
            PROTO_UDP,
            ipv4::DSCP_TRIMMED, // ride the priority queue: tiny and latency-critical
            &udp_bytes,
        );
        ethernet::build_frame(net.dst_mac, net.src_mac, ETHERTYPE_IPV4, &ip_bytes)
    }

    /// Parses a full frame previously built with [`build_frame`](Self::build_frame).
    ///
    /// # Errors
    ///
    /// Layer errors, [`WireError::BadChecksum`], or [`WireError::BadField`]
    /// if the frame is not addressed to the metadata port.
    pub fn parse_frame(frame: &[u8]) -> Result<Self> {
        let eth = ethernet::EthernetFrame::new_checked(frame)?;
        let ip = Ipv4Packet::new_checked(eth.payload())?;
        if !ip.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        // trimlint: allow(unchecked-len-index) -- new_checked bounds total_len
        let udp_slice = &eth.payload()[ipv4::HEADER_LEN..ip.total_len() as usize];
        let dgram = UdpDatagram::new_checked(udp_slice)?;
        if !dgram.verify_checksum(ip.src(), ip.dst()) {
            return Err(WireError::BadChecksum);
        }
        if dgram.dst_port() != PORT_METADATA {
            return Err(WireError::BadField("dst_port"));
        }
        Self::from_bytes(dgram.payload())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowMetaPacket {
        RowMetaPacket {
            scheme: SchemeId::SubtractiveDither,
            msg_id: 77,
            row_id: 3,
            original_len: 32_768,
            scale: 0.0321,
            epoch: 9,
        }
    }

    #[test]
    fn payload_roundtrip() {
        let m = sample();
        assert_eq!(RowMetaPacket::from_bytes(&m.to_bytes()).unwrap(), m);
    }

    #[test]
    fn frame_roundtrip() {
        let m = sample();
        let net = NetAddrs::between_hosts(5, 6);
        let frame = m.build_frame(&net);
        assert_eq!(RowMetaPacket::parse_frame(&frame).unwrap(), m);
        // Metadata frames are tiny (well under any trim threshold).
        assert!(frame.len() < 100, "metadata frame {} bytes", frame.len());
    }

    #[test]
    fn row_meta_conversion() {
        let rm = sample().row_meta();
        assert_eq!(rm.original_len, 32_768);
        assert_eq!(rm.scale, 0.0321);
    }

    #[test]
    fn scale_preserves_exact_bits() {
        let mut m = sample();
        m.scale = f32::MIN_POSITIVE;
        let back = RowMetaPacket::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back.scale.to_bits(), m.scale.to_bits());
    }

    #[test]
    fn rejects_malformed() {
        let m = sample();
        let good = m.to_bytes();
        assert_eq!(
            RowMetaPacket::from_bytes(&good[..10]).unwrap_err(),
            WireError::Truncated
        );
        let mut bad = good;
        bad[0] = 0;
        assert_eq!(
            RowMetaPacket::from_bytes(&bad).unwrap_err(),
            WireError::BadMagic
        );
        let mut bad = good;
        bad[2] = 9;
        assert_eq!(
            RowMetaPacket::from_bytes(&bad).unwrap_err(),
            WireError::BadVersion
        );
        let mut bad = good;
        bad[3] = 111;
        assert_eq!(
            RowMetaPacket::from_bytes(&bad).unwrap_err(),
            WireError::BadField("scheme")
        );
    }

    #[test]
    fn corrupted_frame_rejected() {
        let net = NetAddrs::between_hosts(1, 2);
        let mut frame = sample().build_frame(&net);
        let n = frame.len();
        frame[n - 2] ^= 0xFF;
        assert_eq!(
            RowMetaPacket::parse_frame(&frame).unwrap_err(),
            WireError::BadChecksum
        );
    }
}
