//! Checked narrowing into fixed-width wire fields.
//!
//! Header fields have fixed widths; a length or count that does not fit is a
//! protocol-geometry bug upstream (an MTU far beyond the format's design
//! range, or a row longer than the chunk-id space). Silently truncating such
//! a value with `as` would emit a corrupt frame that parses as a *different*
//! valid packet, so every narrowing into a wire field funnels through these
//! helpers, which panic with context instead. Callers whose inputs are not
//! structurally bounded document the panic in their `# Panics` section.

/// Narrows `v` into a `u8` wire field.
///
/// # Panics
///
/// Panics if `v` exceeds `u8::MAX`; `what` names the field in the message.
#[must_use]
pub fn to_u8(v: usize, what: &'static str) -> u8 {
    match u8::try_from(v) {
        Ok(x) => x,
        // trimlint: allow(no-panic) -- the checked-narrowing chokepoint: overflow here means a corrupt frame would otherwise hit the wire
        Err(_) => panic!("{what} {v} does not fit the u8 wire field"),
    }
}

/// Narrows `v` into a `u16` wire field.
///
/// # Panics
///
/// Panics if `v` exceeds `u16::MAX`; `what` names the field in the message.
#[must_use]
pub fn to_u16(v: usize, what: &'static str) -> u16 {
    match u16::try_from(v) {
        Ok(x) => x,
        // trimlint: allow(no-panic) -- the checked-narrowing chokepoint: overflow here means a corrupt frame would otherwise hit the wire
        Err(_) => panic!("{what} {v} does not fit the u16 wire field"),
    }
}

/// Narrows `v` into a `u32` wire field.
///
/// # Panics
///
/// Panics if `v` exceeds `u32::MAX`; `what` names the field in the message.
#[must_use]
pub fn to_u32(v: usize, what: &'static str) -> u32 {
    match u32::try_from(v) {
        Ok(x) => x,
        // trimlint: allow(no-panic) -- the checked-narrowing chokepoint: overflow here means a corrupt frame would otherwise hit the wire
        Err(_) => panic!("{what} {v} does not fit the u32 wire field"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_range_values_pass_through() {
        assert_eq!(to_u8(255, "x"), 255);
        assert_eq!(to_u16(65_535, "x"), 65_535);
        assert_eq!(to_u32(70_000, "x"), 70_000);
    }

    #[test]
    #[should_panic(expected = "chunk id 256 does not fit the u8 wire field")]
    fn overflow_panics_with_context() {
        let _ = to_u8(256, "chunk id");
    }

    #[test]
    #[should_panic(expected = "does not fit the u16 wire field")]
    fn u16_overflow_panics() {
        let _ = to_u16(70_000, "length");
    }
}
