//! Complete gradient data packets and the in-switch trim operation.
//!
//! [`GradPacket`] owns one full Ethernet frame
//! (`Ethernet → IPv4 → UDP → TrimGrad → payload sections`) and provides the
//! two operations the dataplane performs:
//!
//! * [`GradPacket::parse`] — receiver-side: validate every layer (including
//!   checksums) and expose the TrimGrad fields plus the surviving payload
//!   sections;
//! * [`GradPacket::trim_to_depth`] — switch-side: truncate the frame at a
//!   section boundary, decrement `trim_depth`, raise the DSCP to the
//!   high-priority trimmed class, and patch the IPv4/UDP lengths and
//!   checksums — everything a real trimming ASIC rewrites.

use crate::ethernet::{self, EthernetFrame, MacAddr, ETHERTYPE_IPV4};
use crate::ipv4::{self, Ipv4Addr, Ipv4Packet, DSCP_BULK, DSCP_TRIMMED, PROTO_UDP};
use crate::payload::{PayloadLayout, MAX_PARTS};
use crate::trimhdr::{self, TrimGradFields, TrimGradHeader};
use crate::udp::{self, UdpDatagram, PORT_GRADIENT};
use crate::{Result, WireError};

/// Address tuple for one gradient flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetAddrs {
    /// Source MAC.
    pub src_mac: MacAddr,
    /// Destination MAC.
    pub dst_mac: MacAddr,
    /// Source IPv4.
    pub src_ip: Ipv4Addr,
    /// Destination IPv4.
    pub dst_ip: Ipv4Addr,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
}

impl NetAddrs {
    /// The canonical addresses for gradient traffic between simulated hosts.
    #[must_use]
    pub fn between_hosts(src: u32, dst: u32) -> Self {
        Self {
            src_mac: MacAddr::for_host(src),
            dst_mac: MacAddr::for_host(dst),
            src_ip: Ipv4Addr::for_host(src),
            dst_ip: Ipv4Addr::for_host(dst),
            src_port: PORT_GRADIENT,
            dst_port: PORT_GRADIENT,
        }
    }
}

/// Byte overhead of the full header stack (Ethernet + IPv4 + UDP + TrimGrad).
pub const STACK_OVERHEAD: usize =
    ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN + trimhdr::HEADER_LEN;

/// One gradient data packet: an owned, fully-formed Ethernet frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradPacket {
    frame: Vec<u8>,
}

/// The result of parsing a [`GradPacket`]: header fields and borrowed
/// payload sections (only the first `trim_depth` sections survive trimming).
#[derive(Debug)]
pub struct ParsedGrad<'a> {
    /// Flow addresses.
    pub net: NetAddrs,
    /// TrimGrad header fields.
    pub fields: TrimGradFields,
    /// Borrowed payload sections, `fields.trim_depth` of them.
    pub sections: Sections<'a>,
}

/// Up to [`MAX_PARTS`] borrowed payload sections, stored inline so parsing a
/// packet allocates nothing — the switch trim path parses every forwarded
/// packet. Derefs to `[&[u8]]`, so indexing, `len()`, and iteration read
/// like the `Vec` it replaced.
#[derive(Debug, Clone, Copy)]
pub struct Sections<'a> {
    refs: [&'a [u8]; MAX_PARTS],
    n: usize,
}

impl<'a> std::ops::Deref for Sections<'a> {
    type Target = [&'a [u8]];

    fn deref(&self) -> &Self::Target {
        &self.refs[..self.n]
    }
}

impl GradPacket {
    /// Builds an untrimmed packet from header fields and one byte slice per
    /// payload section.
    ///
    /// # Panics
    ///
    /// Panics if `sections.len() != fields.n_parts` or if a section's length
    /// does not match the layout implied by `fields` — those are programming
    /// errors in the packetizer, not runtime conditions.
    #[must_use]
    pub fn build(net: &NetAddrs, fields: TrimGradFields, sections: &[&[u8]]) -> Self {
        assert_eq!(
            sections.len(),
            fields.n_parts as usize,
            "one byte slice per part"
        );
        assert_eq!(
            fields.trim_depth, fields.n_parts,
            "packets are built untrimmed"
        );
        let layout = PayloadLayout::new(fields.scheme.part_bits(), fields.coord_count as usize);
        for (j, s) in sections.iter().enumerate() {
            assert_eq!(
                s.len(),
                layout.section_len(j),
                "section {j} length mismatch"
            );
        }
        Self::build_with(net, fields, Vec::new(), |body| {
            let mut off = 0;
            for s in sections {
                body[off..off + s.len()].copy_from_slice(s);
                off += s.len();
            }
        })
    }

    /// Builds an untrimmed packet by writing every layer directly into
    /// `frame` — the single-allocation form of [`build`](Self::build) for
    /// recycled buffers (see [`FramePool`](crate::pool::FramePool)).
    ///
    /// `write_sections` fills the section payload area that follows the
    /// TrimGrad header; it receives exactly `layout.total_len()` bytes and
    /// must write all of them (recycled frames are not zeroed). The UDP
    /// checksum is computed after `write_sections` returns, so the result is
    /// byte-identical to [`build`](Self::build).
    ///
    /// # Panics
    ///
    /// Panics if `fields` describe a trimmed packet — a programming error in
    /// the packetizer, not a runtime condition.
    #[must_use]
    pub fn build_with(
        net: &NetAddrs,
        fields: TrimGradFields,
        mut frame: Vec<u8>,
        write_sections: impl FnOnce(&mut [u8]),
    ) -> Self {
        assert_eq!(
            fields.trim_depth, fields.n_parts,
            "packets are built untrimmed"
        );
        let layout = PayloadLayout::new(fields.scheme.part_bits(), fields.coord_count as usize);
        let app_len = trimhdr::HEADER_LEN + layout.total_len();
        let udp_len = udp::HEADER_LEN + app_len;
        let ip_len = ipv4::HEADER_LEN + udp_len;
        let frame_len = ethernet::HEADER_LEN + ip_len;
        // Every byte of the frame is overwritten below, so a recycled buffer
        // needs no zeroing; only newly grown capacity is zero-filled.
        frame.resize(frame_len, 0);
        ethernet::write_header(&mut frame, net.dst_mac, net.src_mac, ETHERTYPE_IPV4);
        let ip_len_field = crate::narrow::to_u16(ip_len, "IPv4 total length");
        ipv4::write_header(
            &mut frame[ethernet::HEADER_LEN..],
            net.src_ip,
            net.dst_ip,
            PROTO_UDP,
            DSCP_BULK,
            ip_len_field,
        );
        let udp_start = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        let udp_len_field = crate::narrow::to_u16(udp_len, "UDP length");
        udp::write_header(
            &mut frame[udp_start..],
            net.src_port,
            net.dst_port,
            udp_len_field,
        );
        let app_start = udp_start + udp::HEADER_LEN;
        frame[app_start..app_start + trimhdr::HEADER_LEN].copy_from_slice(&fields.to_bytes());
        write_sections(&mut frame[app_start + trimhdr::HEADER_LEN..frame_len]);
        udp::fill_checksum_in(&mut frame[udp_start..], net.src_ip, net.dst_ip);
        Self { frame }
    }

    /// Wraps an already-formed frame without validation (for the simulator's
    /// ingress path; validate with [`parse`](Self::parse)).
    #[must_use]
    pub fn from_frame(frame: Vec<u8>) -> Self {
        Self { frame }
    }

    /// The raw frame bytes.
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.frame
    }

    /// Total frame length in bytes (what occupies link capacity and queues).
    #[must_use]
    pub fn wire_len(&self) -> usize {
        self.frame.len()
    }

    /// Consumes the packet, returning the frame.
    #[must_use]
    pub fn into_frame(self) -> Vec<u8> {
        self.frame
    }

    /// Parses and validates every layer.
    ///
    /// # Errors
    ///
    /// Any [`WireError`] from the individual layers; [`WireError::BadChecksum`]
    /// if the IPv4 or UDP checksum fails; [`WireError::Truncated`] if the
    /// payload is shorter than `trim_depth` sections require.
    pub fn parse(&self) -> Result<ParsedGrad<'_>> {
        let eth = EthernetFrame::new_checked(&self.frame[..])?;
        if eth.ethertype() != ETHERTYPE_IPV4 {
            return Err(WireError::BadField("ethertype"));
        }
        let ip = Ipv4Packet::new_checked(eth.payload())?;
        if !ip.verify_checksum() {
            return Err(WireError::BadChecksum);
        }
        if ip.protocol() != PROTO_UDP {
            return Err(WireError::BadField("protocol"));
        }
        let (src_ip, dst_ip) = (ip.src(), ip.dst());
        // trimlint: allow(unchecked-len-index) -- new_checked bounds total_len
        let udp_slice = &eth.payload()[ipv4::HEADER_LEN..ip.total_len() as usize];
        let udp = UdpDatagram::new_checked(udp_slice)?;
        if !udp.verify_checksum(src_ip, dst_ip) {
            return Err(WireError::BadChecksum);
        }
        let net = NetAddrs {
            src_mac: eth.src(),
            dst_mac: eth.dst(),
            src_ip,
            dst_ip,
            src_port: udp.src_port(),
            dst_port: udp.dst_port(),
        };
        // Re-borrow the UDP payload from the frame to untangle lifetimes.
        let app_start = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;
        let app_end = ethernet::HEADER_LEN + ip.total_len() as usize;
        let app = &self.frame[app_start..app_end];
        let hdr = TrimGradHeader::new_checked(app)?;
        let fields = TrimGradFields::from_header(&hdr);
        let layout = PayloadLayout::new(fields.scheme.part_bits(), fields.coord_count as usize);
        let body = &app[trimhdr::HEADER_LEN..];
        let depth = fields.trim_depth as usize;
        if body.len() < layout.trim_point(depth) {
            return Err(WireError::Truncated);
        }
        debug_assert!(depth <= MAX_PARTS, "new_checked bounds trim_depth");
        let mut sections = Sections {
            refs: [&[]; MAX_PARTS],
            n: depth,
        };
        for (j, slot) in sections.refs.iter_mut().enumerate().take(depth) {
            *slot = &body[layout.section_range(j)];
        }
        Ok(ParsedGrad {
            net,
            fields,
            sections,
        })
    }

    /// Performs the switch trim: keep only the first `depth` payload
    /// sections. This is what a trimming-capable ASIC does to the packet —
    /// truncate, rewrite `trim_depth`, promote to the high-priority DSCP,
    /// and patch the IPv4/UDP length and checksum fields.
    ///
    /// Trimming to the current depth (or deeper) is a no-op. Reliable-flagged
    /// packets refuse to trim.
    ///
    /// # Errors
    ///
    /// [`WireError::BadField`] if the packet is reliable or `depth` is 0;
    /// parse errors if the frame is malformed.
    pub fn trim_to_depth(&mut self, depth: u8) -> Result<()> {
        if depth == 0 {
            return Err(WireError::BadField("trim_depth"));
        }
        // Read the current geometry.
        let (fields, src_ip, dst_ip) = {
            let parsed = self.parse()?;
            (parsed.fields, parsed.net.src_ip, parsed.net.dst_ip)
        };
        if fields.flags & trimhdr::FLAG_RELIABLE != 0 {
            return Err(WireError::BadField("reliable"));
        }
        if depth >= fields.trim_depth {
            return Ok(());
        }
        let layout = PayloadLayout::new(fields.scheme.part_bits(), fields.coord_count as usize);
        let new_app_len = trimhdr::HEADER_LEN + layout.trim_point(depth as usize);
        let new_udp_len = udp::HEADER_LEN + new_app_len;
        let new_ip_len = ipv4::HEADER_LEN + new_udp_len;
        self.frame.truncate(ethernet::HEADER_LEN + new_ip_len);

        // Patch the TrimGrad depth.
        let app_start = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;
        let mut hdr = TrimGradHeader::new_unchecked_mut(&mut self.frame[app_start..])?;
        hdr.set_trim_depth(depth);

        // Patch UDP length + checksum.
        let udp_start = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        {
            let udp_len_field =
                u16::try_from(new_udp_len).map_err(|_| WireError::BadField("udp_len"))?;
            let udp_buf = &mut self.frame[udp_start..];
            udp_buf[4..6].copy_from_slice(&udp_len_field.to_be_bytes());
            let mut dgram = UdpDatagram::new_checked(udp_buf)?;
            dgram.fill_checksum(src_ip, dst_ip);
        }

        // Patch IPv4 length, DSCP, checksum.
        {
            let ip_len_field =
                u16::try_from(new_ip_len).map_err(|_| WireError::BadField("total_len"))?;
            let ip_buf = &mut self.frame[ethernet::HEADER_LEN..];
            ip_buf[2..4].copy_from_slice(&ip_len_field.to_be_bytes());
            let mut ip = Ipv4Packet::new_checked(ip_buf)?;
            ip.set_dscp(DSCP_TRIMMED);
            ip.fill_checksum();
        }
        Ok(())
    }

    /// Convenience: the TrimGrad fields without full checksum validation
    /// (used on hot simulator paths where the frame was built locally).
    ///
    /// # Errors
    ///
    /// Header-level errors only.
    pub fn quick_fields(&self) -> Result<TrimGradFields> {
        let app_start = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN;
        if self.frame.len() < app_start + trimhdr::HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let hdr = TrimGradHeader::new_checked(&self.frame[app_start..])?;
        Ok(TrimGradFields::from_header(&hdr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgrad_quant::SchemeId;

    fn sample_fields(coords: u16) -> TrimGradFields {
        TrimGradFields {
            scheme: SchemeId::RhtOneBit,
            n_parts: 2,
            trim_depth: 2,
            chunk_id: 0,
            msg_id: 1,
            row_id: 2,
            coord_start: 0,
            coord_count: coords,
            flags: 0,
            epoch: 3,
        }
    }

    fn sample_packet(coords: u16) -> GradPacket {
        let layout = PayloadLayout::new(&[1, 31], coords as usize);
        let heads = vec![0xA5u8; layout.section_len(0)];
        let tails = vec![0x5Au8; layout.section_len(1)];
        GradPacket::build(
            &NetAddrs::between_hosts(1, 2),
            sample_fields(coords),
            &[&heads, &tails],
        )
    }

    #[test]
    fn build_parse_roundtrip() {
        let pkt = sample_packet(360);
        assert_eq!(pkt.wire_len(), STACK_OVERHEAD + 45 + 1395);
        let p = pkt.parse().unwrap();
        assert_eq!(p.fields, sample_fields(360));
        assert_eq!(p.sections.len(), 2);
        assert_eq!(p.sections[0].len(), 45);
        assert_eq!(p.sections[1].len(), 1395);
        assert!(p.sections[0].iter().all(|&b| b == 0xA5));
        assert_eq!(p.net, NetAddrs::between_hosts(1, 2));
    }

    #[test]
    fn trim_produces_valid_small_packet() {
        let mut pkt = sample_packet(360);
        let full_len = pkt.wire_len();
        pkt.trim_to_depth(1).unwrap();
        assert_eq!(pkt.wire_len(), STACK_OVERHEAD + 45);
        assert!(pkt.wire_len() < full_len / 10, "≥90% size reduction");
        let p = pkt.parse().unwrap();
        assert_eq!(p.fields.trim_depth, 1);
        assert_eq!(p.sections.len(), 1);
        assert_eq!(p.sections[0].len(), 45);
        assert!(p.sections[0].iter().all(|&b| b == 0xA5));
        // Trimmed packets ride the high-priority DSCP.
        let eth = EthernetFrame::new_checked(pkt.as_bytes()).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert_eq!(ip.dscp(), DSCP_TRIMMED);
        assert!(ip.verify_checksum());
    }

    #[test]
    fn trim_is_idempotent_and_monotone() {
        let mut pkt = sample_packet(100);
        pkt.trim_to_depth(1).unwrap();
        let after_first = pkt.clone();
        // Trimming to the same or a deeper depth changes nothing.
        pkt.trim_to_depth(1).unwrap();
        assert_eq!(pkt, after_first);
        pkt.trim_to_depth(2).unwrap();
        assert_eq!(pkt, after_first);
    }

    #[test]
    fn reliable_packets_refuse_to_trim() {
        let layout = PayloadLayout::new(&[1, 31], 10);
        let heads = vec![0u8; layout.section_len(0)];
        let tails = vec![0u8; layout.section_len(1)];
        let mut fields = sample_fields(10);
        fields.flags = trimhdr::FLAG_RELIABLE;
        let mut pkt = GradPacket::build(&NetAddrs::between_hosts(1, 2), fields, &[&heads, &tails]);
        assert_eq!(
            pkt.trim_to_depth(1).unwrap_err(),
            WireError::BadField("reliable")
        );
    }

    #[test]
    fn corrupted_frame_fails_parse() {
        let pkt = sample_packet(50);
        let mut bytes = pkt.into_frame();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // flip payload bits → UDP checksum fails
        let bad = GradPacket::from_frame(bytes);
        assert_eq!(bad.parse().unwrap_err(), WireError::BadChecksum);
    }

    #[test]
    fn truncated_frame_fails_parse() {
        let pkt = sample_packet(50);
        let mut bytes = pkt.into_frame();
        bytes.truncate(bytes.len() - 10); // shorter than IP total_len
        let bad = GradPacket::from_frame(bytes);
        assert_eq!(bad.parse().unwrap_err(), WireError::Truncated);
    }

    #[test]
    fn quick_fields_matches_parse() {
        let pkt = sample_packet(75);
        assert_eq!(pkt.quick_fields().unwrap(), pkt.parse().unwrap().fields);
    }

    #[test]
    fn three_part_scheme_trims_at_both_levels() {
        let coords: u16 = 64;
        let layout = PayloadLayout::new(SchemeId::MultiLevelRht.part_bits(), coords as usize);
        let s0 = vec![1u8; layout.section_len(0)];
        let s1 = vec![2u8; layout.section_len(1)];
        let s2 = vec![3u8; layout.section_len(2)];
        let fields = TrimGradFields {
            scheme: SchemeId::MultiLevelRht,
            n_parts: 3,
            trim_depth: 3,
            ..sample_fields(coords)
        };
        let addrs = NetAddrs::between_hosts(3, 4);
        let mut mid = GradPacket::build(&addrs, fields, &[&s0, &s1, &s2]);
        mid.trim_to_depth(2).unwrap();
        let p = mid.parse().unwrap();
        assert_eq!(p.sections.len(), 2);
        assert!(p.sections[1].iter().all(|&b| b == 2));
        // Trim further.
        mid.trim_to_depth(1).unwrap();
        let p = mid.parse().unwrap();
        assert_eq!(p.sections.len(), 1);
        assert!(p.sections[0].iter().all(|&b| b == 1));
    }

    #[test]
    fn crafted_overclaimed_parts_frame_is_rejected_not_panicked() {
        // Regression: a frame with valid checksums whose TrimGrad header
        // claims n_parts = trim_depth = 3 for a two-part scheme used to
        // clear header validation and panic inside the payload-layout
        // arithmetic during parse. Receive paths must reject it cleanly.
        let net = NetAddrs::between_hosts(1, 2);
        let mut fields = sample_fields(8); // RhtOneBit: really 2 parts
        fields.n_parts = 3;
        fields.trim_depth = 3;
        let mut app = Vec::new();
        app.extend_from_slice(&fields.to_bytes());
        app.extend_from_slice(&[0u8; 64]); // plausible-looking payload
        let udp_bytes =
            udp::build_datagram(net.src_ip, net.dst_ip, net.src_port, net.dst_port, &app);
        let ip_bytes = ipv4::build_packet(net.src_ip, net.dst_ip, PROTO_UDP, DSCP_BULK, &udp_bytes);
        let frame = ethernet::build_frame(net.dst_mac, net.src_mac, ETHERTYPE_IPV4, &ip_bytes);
        let pkt = GradPacket::from_frame(frame);
        assert_eq!(pkt.parse().unwrap_err(), WireError::BadField("n_parts"));
        assert_eq!(
            pkt.quick_fields().unwrap_err(),
            WireError::BadField("n_parts")
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn build_rejects_wrong_section_length() {
        let fields = sample_fields(10);
        let _ = GradPacket::build(
            &NetAddrs::between_hosts(1, 2),
            fields,
            &[&[0u8; 2], &[0u8; 4]], // head should be ⌈10/8⌉ = 2 ✔, tail ⌈310/8⌉ = 39 ✘
        );
    }
}
