//! Splitting an encoded row into MTU-sized trimmable packets.
//!
//! Each packet carries a contiguous coordinate range `[coord_start,
//! coord_start + coord_count)` of the row, with every part's fields for that
//! range laid out heads-first ([`crate::payload`]). The row's scale factor
//! travels in one reliable [`crate::meta::RowMetaPacket`].

use crate::meta::RowMetaPacket;
use crate::packet::{GradPacket, NetAddrs};
use crate::payload::{max_coords_for_budget, PayloadLayout};
use crate::pool::FramePool;
use crate::trimhdr::{TrimGradFields, FLAG_LAST_CHUNK};
use crate::{ethernet, ipv4, narrow, trimhdr, udp};
use trimgrad_quant::EncodedRow;

/// Configuration for packetizing one row.
#[derive(Debug, Clone, Copy)]
pub struct PacketizeConfig {
    /// IP MTU in bytes (IPv4 header and everything below it must fit;
    /// Ethernet framing is extra). The classic value is 1500.
    pub mtu: usize,
    /// Flow addresses.
    pub net: NetAddrs,
    /// Collective message id.
    pub msg_id: u32,
    /// Row index within the message.
    pub row_id: u32,
    /// Training epoch (seed context).
    pub epoch: u32,
}

impl PacketizeConfig {
    /// The payload byte budget per packet under this MTU.
    #[must_use]
    pub fn payload_budget(&self) -> usize {
        self.mtu
            .saturating_sub(ipv4::HEADER_LEN + udp::HEADER_LEN + trimhdr::HEADER_LEN)
    }
}

/// The packetized form of one row.
#[derive(Debug)]
pub struct PacketizedRow {
    /// Data packets, in coordinate order. Empty for an empty row.
    pub packets: Vec<GradPacket>,
    /// The reliable metadata packet.
    pub meta: RowMetaPacket,
}

/// Splits `enc` into MTU-sized packets plus one metadata packet.
///
/// # Panics
///
/// Panics if the MTU is too small to fit even one coordinate — a static
/// misconfiguration.
#[must_use]
pub fn packetize_row(enc: &EncodedRow, cfg: &PacketizeConfig) -> PacketizedRow {
    let mut pool = FramePool::new();
    packetize_row_pooled(enc, cfg, &mut pool)
}

/// [`packetize_row`] writing into recycled buffers from `pool`.
///
/// Section bits are copied straight from the row's bit buffers into the
/// frame (`BitBuf::copy_bits_to`) — no intermediate per-section or
/// per-layer allocation — so a warm pool packetizes a steady stream of rows
/// allocation-free. Output frames are byte-identical to [`packetize_row`]'s.
///
/// # Panics
///
/// Panics if the MTU is too small to fit even one coordinate — a static
/// misconfiguration.
// trimlint: hot-path -- per-row frame build on the send path
#[must_use]
pub fn packetize_row_pooled(
    enc: &EncodedRow,
    cfg: &PacketizeConfig,
    pool: &mut FramePool,
) -> PacketizedRow {
    let meta = RowMetaPacket {
        scheme: enc.scheme,
        msg_id: cfg.msg_id,
        row_id: cfg.row_id,
        original_len: narrow::to_u32(enc.meta.original_len, "row length"),
        scale: enc.meta.scale,
        epoch: cfg.epoch,
    };
    if enc.n == 0 {
        return PacketizedRow {
            packets: Vec::new(),
            meta,
        };
    }
    let part_bits = enc.scheme.part_bits();
    let per_packet = max_coords_for_budget(part_bits, cfg.payload_budget())
        // trimlint: allow(no-panic) -- documented # Panics contract: an MTU too small for one coordinate is a static misconfiguration
        .unwrap_or_else(|| panic!("MTU {} cannot fit one coordinate", cfg.mtu));
    let n_parts = narrow::to_u8(part_bits.len(), "part count");
    let n_chunks = enc.n.div_ceil(per_packet);
    // trimlint: allow(hot-path-alloc) -- one row-level Vec of packet handles per call; the frames themselves come from the pool
    let mut packets = Vec::with_capacity(n_chunks);
    for chunk_id in 0..n_chunks {
        let start = chunk_id * per_packet;
        let count = per_packet.min(enc.n - start);
        let fields = TrimGradFields {
            scheme: enc.scheme,
            n_parts,
            trim_depth: n_parts,
            chunk_id: narrow::to_u16(chunk_id, "chunk id"),
            msg_id: cfg.msg_id,
            row_id: cfg.row_id,
            coord_start: start as u32,
            coord_count: narrow::to_u16(count, "coordinate count"),
            flags: if chunk_id == n_chunks - 1 {
                FLAG_LAST_CHUNK
            } else {
                0
            },
            epoch: cfg.epoch,
        };
        let layout = PayloadLayout::new(part_bits, count);
        let frame = pool.take();
        packets.push(GradPacket::build_with(&cfg.net, fields, frame, |body| {
            for (j, (buf, &w)) in enc.parts.iter().zip(part_bits).enumerate() {
                buf.copy_bits_to(
                    start * w as usize,
                    count * w as usize,
                    &mut body[layout.section_range(j)],
                );
            }
        }));
    }
    PacketizedRow { packets, meta }
}

/// Total wire bytes of a packetized row (data packets + metadata frame),
/// including Ethernet framing — the quantity that loads links and queues.
#[must_use]
pub fn wire_bytes(row: &PacketizedRow, net: &NetAddrs) -> usize {
    row.packets.iter().map(GradPacket::wire_len).sum::<usize>() + row.meta.build_frame(net).len()
}

/// [`packetize_row_pooled`] that also records a
/// [`trimgrad_trace::TraceEvent::RowEncoded`] for the flight recorder.
/// Output frames are byte-identical to the untraced variants; with a
/// disabled tracer the extra cost is one branch.
///
/// # Panics
///
/// Panics if the MTU is too small to fit even one coordinate — a static
/// misconfiguration.
#[must_use]
pub fn packetize_row_traced(
    enc: &EncodedRow,
    cfg: &PacketizeConfig,
    pool: &mut FramePool,
    tracer: &trimgrad_trace::Tracer,
    at: u64,
) -> PacketizedRow {
    let row = packetize_row_pooled(enc, cfg, pool);
    tracer.emit(at, || trimgrad_trace::TraceEvent::RowEncoded {
        msg: cfg.msg_id,
        row: cfg.row_id,
        packets: trimgrad_trace::sat32(row.packets.len()),
        bytes: trimgrad_trace::sat64(row.packets.iter().map(GradPacket::wire_len).sum::<usize>()),
    });
    row
}

/// Protocol efficiency report for §2's in-text numbers: how an MTU-sized
/// packet divides into headers, trimmed payload, and trimmable payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayoutReport {
    /// Coordinates per MTU packet.
    pub coords_per_packet: usize,
    /// Full frame length on the wire (with Ethernet).
    pub full_frame_len: usize,
    /// Frame length after a head-only trim.
    pub trimmed_frame_len: usize,
    /// Fraction of the frame removed by trimming.
    pub compression_ratio: f64,
}

/// Computes the §2 layout numbers for `scheme` geometry at a given MTU.
#[must_use]
pub fn layout_report(part_bits: &[u32], mtu: usize) -> Option<LayoutReport> {
    let budget = mtu.saturating_sub(ipv4::HEADER_LEN + udp::HEADER_LEN + trimhdr::HEADER_LEN);
    let coords = max_coords_for_budget(part_bits, budget)?;
    let layout = PayloadLayout::new(part_bits, coords);
    let overhead = ethernet::HEADER_LEN + ipv4::HEADER_LEN + udp::HEADER_LEN + trimhdr::HEADER_LEN;
    let full = overhead + layout.total_len();
    let trimmed = overhead + layout.trim_point(1);
    Some(LayoutReport {
        coords_per_packet: coords,
        full_frame_len: full,
        trimmed_frame_len: trimmed,
        compression_ratio: 1.0 - trimmed as f64 / full as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use trimgrad_quant::rht1bit::RhtOneBit;
    use trimgrad_quant::scheme::TrimmableScheme;
    use trimgrad_quant::signmag::SignMagnitude;

    fn cfg() -> PacketizeConfig {
        PacketizeConfig {
            mtu: 1500,
            net: NetAddrs::between_hosts(1, 2),
            msg_id: 5,
            row_id: 2,
            epoch: 1,
        }
    }

    #[test]
    fn budget_accounts_for_all_headers() {
        assert_eq!(cfg().payload_budget(), 1500 - 20 - 8 - 28);
    }

    #[test]
    fn single_packet_row() {
        let row: Vec<f32> = (0..100).map(|i| i as f32 / 10.0).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let pr = packetize_row(&enc, &cfg());
        assert_eq!(pr.packets.len(), 1);
        let p = pr.packets[0].parse().unwrap();
        assert_eq!(p.fields.coord_start, 0);
        assert_eq!(p.fields.coord_count, 100);
        assert_ne!(p.fields.flags & FLAG_LAST_CHUNK, 0);
        assert_eq!(pr.meta.original_len, 100);
        assert_eq!(pr.meta.scheme, enc.scheme);
    }

    #[test]
    fn traced_packetize_is_byte_identical_and_emits_row_encoded() {
        let row: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let plain = packetize_row(&enc, &cfg());
        let tracer = trimgrad_trace::Tracer::enabled(64);
        let mut pool = FramePool::new();
        let traced = packetize_row_traced(&enc, &cfg(), &mut pool, &tracer, 42);
        assert_eq!(traced.packets, plain.packets);
        assert_eq!(traced.meta, plain.meta);
        let trace = tracer.snapshot();
        assert_eq!(trace.records.len(), 1);
        assert_eq!(trace.records[0].at, 42);
        match trace.records[0].event {
            trimgrad_trace::TraceEvent::RowEncoded {
                msg,
                row,
                packets,
                bytes,
            } => {
                assert_eq!((msg, row), (5, 2));
                assert_eq!(packets as usize, plain.packets.len());
                let wire: usize = plain.packets.iter().map(GradPacket::wire_len).sum();
                assert_eq!(bytes as usize, wire);
            }
            ref other => panic!("unexpected event {other:?}"),
        }
        // Disabled tracer: same output, nothing recorded.
        let off = trimgrad_trace::Tracer::disabled();
        let silent = packetize_row_traced(&enc, &cfg(), &mut pool, &off, 0);
        assert_eq!(silent.packets, plain.packets);
        assert_eq!(off.events_emitted(), 0);
    }

    #[test]
    fn multi_packet_row_covers_all_coordinates() {
        let row: Vec<f32> = (0..1000).map(|i| (i as f32).sin()).collect();
        let enc = RhtOneBit.encode(&row, 3); // pads to 1024
        let pr = packetize_row(&enc, &cfg());
        // 1024 coords at 360/packet → 3 packets (360+360+304).
        assert_eq!(pr.packets.len(), 3);
        let mut covered = 0usize;
        for (i, pkt) in pr.packets.iter().enumerate() {
            let p = pkt.parse().unwrap();
            assert_eq!(p.fields.chunk_id as usize, i);
            assert_eq!(p.fields.coord_start as usize, covered);
            covered += p.fields.coord_count as usize;
            let is_last = i == pr.packets.len() - 1;
            assert_eq!(p.fields.flags & FLAG_LAST_CHUNK != 0, is_last);
        }
        assert_eq!(covered, enc.n);
    }

    #[test]
    fn packet_sections_carry_correct_bits() {
        let row: Vec<f32> = (0..500).map(|i| i as f32 - 250.0).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let pr = packetize_row(&enc, &cfg());
        // Check the second packet's head section against the row's sign bits.
        let p = pr.packets[1].parse().unwrap();
        let start = p.fields.coord_start as usize;
        for i in 0..p.fields.coord_count as usize {
            let head_bit = (p.sections[0][i / 8] >> (i % 8)) & 1;
            let expect = u8::from(row[start + i] < 0.0);
            assert_eq!(head_bit, expect, "coordinate {}", start + i);
        }
    }

    #[test]
    fn empty_row_yields_meta_only() {
        let enc = SignMagnitude.encode(&[], 0);
        let pr = packetize_row(&enc, &cfg());
        assert!(pr.packets.is_empty());
        assert_eq!(pr.meta.original_len, 0);
    }

    #[test]
    fn wire_bytes_counts_everything() {
        let row: Vec<f32> = (0..360).map(|i| i as f32).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let pr = packetize_row(&enc, &cfg());
        let total = wire_bytes(&pr, &cfg().net);
        let data: usize = pr.packets.iter().map(GradPacket::wire_len).sum();
        assert!(total > data, "metadata frame must be included");
        assert!(total - data < 120, "metadata frame is small");
    }

    #[test]
    fn layout_report_matches_paper_scale() {
        // §2: P=1 trimming compresses an MTU packet by ~94%.
        let r = layout_report(&[1, 31], 1500).unwrap();
        assert_eq!(r.coords_per_packet, 360);
        assert_eq!(r.full_frame_len, 14 + 20 + 8 + 28 + 45 + 1395);
        assert_eq!(r.trimmed_frame_len, 14 + 20 + 8 + 28 + 45);
        assert!((0.90..0.95).contains(&r.compression_ratio));
        // Tiny MTU: nothing fits.
        assert!(layout_report(&[1, 31], 60).is_none());
    }

    #[test]
    fn zero_copy_path_is_byte_identical_to_section_slicing() {
        // Regression for the allocation-lean rewrite: build each packet the
        // legacy way (slice each section into an owned Vec, hand slices to
        // GradPacket::build) and require the pooled zero-copy frames to
        // match byte-for-byte. Odd row length exercises the final short
        // chunk; SignMagnitude keeps coordinates unpadded so section offsets
        // land on non-trivial bit boundaries across chunks.
        let row: Vec<f32> = (0..777).map(|i| ((i * 37) % 101) as f32 - 50.0).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        let part_bits = enc.scheme.part_bits();
        for pkt in &pr.packets {
            let f = pkt.quick_fields().unwrap();
            let start = f.coord_start as usize;
            let count = f.coord_count as usize;
            let sections: Vec<Vec<u8>> = enc
                .parts
                .iter()
                .zip(part_bits)
                .map(|(buf, &w)| {
                    buf.slice(start * w as usize, count * w as usize)
                        .as_bytes()
                        .to_vec()
                })
                .collect();
            let section_refs: Vec<&[u8]> = sections.iter().map(Vec::as_slice).collect();
            let legacy = GradPacket::build(&c.net, f, &section_refs);
            assert_eq!(pkt.as_bytes(), legacy.as_bytes(), "chunk {}", f.chunk_id);
        }
    }

    #[test]
    fn pooled_packetize_reuses_buffers_and_matches() {
        let row: Vec<f32> = (0..1000).map(|i| (i as f32).cos()).collect();
        let enc = RhtOneBit.encode(&row, 9);
        let c = cfg();
        let fresh = packetize_row(&enc, &c);
        let mut pool = FramePool::new();
        // Warm the pool with one row's worth of frames, then repacketize.
        let warmup = packetize_row_pooled(&enc, &c, &mut pool);
        pool.recycle_row(warmup);
        let warm_free = pool.free_buffers();
        assert_eq!(warm_free, fresh.packets.len());
        let reused = packetize_row_pooled(&enc, &c, &mut pool);
        assert!(pool.is_empty(), "warm buffers were taken, not reallocated");
        assert_eq!(reused.packets.len(), fresh.packets.len());
        for (a, b) in reused.packets.iter().zip(&fresh.packets) {
            assert_eq!(a.as_bytes(), b.as_bytes());
        }
        assert_eq!(reused.meta, fresh.meta);
    }

    #[test]
    fn small_mtu_produces_more_packets() {
        let row: Vec<f32> = (0..512).map(|i| i as f32).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let small = PacketizeConfig { mtu: 256, ..cfg() };
        let pr_small = packetize_row(&enc, &small);
        let pr_big = packetize_row(&enc, &cfg());
        assert!(pr_small.packets.len() > pr_big.packets.len());
        // Every packet respects its MTU (plus Ethernet framing).
        for p in &pr_small.packets {
            assert!(p.wire_len() <= 256 + ethernet::HEADER_LEN);
        }
    }
}
