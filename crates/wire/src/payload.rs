//! Trimmable payload geometry: heads before tails, sections byte-aligned.
//!
//! A data packet carrying `c` coordinates of a scheme with part widths
//! `[w₀, …, w_{k−1}]` lays its payload out as `k` *sections*; section `j`
//! holds the `w_j`-bit fields of all `c` coordinates, bit-packed and padded
//! to a whole byte:
//!
//! ```text
//! ┌──────────────┬──────────────┬────────────────┐
//! │ section 0    │ section 1    │ …  section k−1 │
//! │ ⌈c·w₀/8⌉ B   │ ⌈c·w₁/8⌉ B   │                │
//! └──────────────┴──────────────┴────────────────┘
//! ↑ trim point 1 ↑ trim point 2 …                ↑ (= full length)
//! ```
//!
//! A switch may cut the packet at any *trim point* — the byte offset right
//! after a section — keeping a prefix of sections. This is §2 of the paper:
//! "the first `P·n` payload bits contain the compressed coordinates while the
//! remainder is the information needed to recover the coordinates' original
//! precision".

/// Upper bound on parts a scheme may define (the richest is `[1, 8, 23]`).
/// Keeping the bound small lets layouts and parsed-section tables live
/// inline: the per-packet paths construct them without heap allocation.
pub const MAX_PARTS: usize = 4;

/// Payload geometry for one packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadLayout {
    /// Widths, inline; slots past `n_parts` stay zero so derived equality
    /// compares only meaningful state.
    part_bits: [u32; MAX_PARTS],
    used: usize,
    coord_count: usize,
}

impl PayloadLayout {
    /// Creates the layout for `coord_count` coordinates of a scheme with the
    /// given part widths.
    ///
    /// # Panics
    ///
    /// Panics if `part_bits` is empty, longer than [`MAX_PARTS`], or
    /// contains zero widths, or if `coord_count` is zero — empty packets are
    /// never built.
    #[must_use]
    pub fn new(part_bits: &[u32], coord_count: usize) -> Self {
        assert!(!part_bits.is_empty(), "at least one part required");
        assert!(part_bits.len() <= MAX_PARTS, "more than {MAX_PARTS} parts");
        assert!(part_bits.iter().all(|&w| w > 0), "zero-width part");
        assert!(coord_count > 0, "empty packet");
        let mut inline = [0u32; MAX_PARTS];
        inline[..part_bits.len()].copy_from_slice(part_bits);
        Self {
            part_bits: inline,
            used: part_bits.len(),
            coord_count,
        }
    }

    /// Number of parts.
    #[must_use]
    pub fn n_parts(&self) -> usize {
        self.used
    }

    /// Coordinates carried.
    #[must_use]
    pub fn coord_count(&self) -> usize {
        self.coord_count
    }

    /// Part widths.
    #[must_use]
    pub fn part_bits(&self) -> &[u32] {
        &self.part_bits[..self.used]
    }

    /// Byte length of section `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    #[must_use]
    pub fn section_len(&self, j: usize) -> usize {
        assert!(j < self.used, "section {j} out of range");
        (self.coord_count * self.part_bits[j] as usize).div_ceil(8)
    }

    /// Byte offset of section `j` within the payload.
    ///
    /// # Panics
    ///
    /// Panics if `j > n_parts()` (offset `n_parts()` is the total length).
    #[must_use]
    pub fn section_offset(&self, j: usize) -> usize {
        assert!(j <= self.n_parts(), "section {j} out of range");
        (0..j).map(|i| self.section_len(i)).sum()
    }

    /// Total payload length in bytes (all sections).
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.section_offset(self.n_parts())
    }

    /// The payload length when trimmed to `depth` parts (`1..=n_parts`).
    ///
    /// # Panics
    ///
    /// Panics for out-of-range depth.
    #[must_use]
    pub fn trim_point(&self, depth: usize) -> usize {
        assert!(
            (1..=self.n_parts()).contains(&depth),
            "depth {depth} out of range 1..={}",
            self.n_parts()
        );
        self.section_offset(depth)
    }

    /// All legal trim points, shallowest first (depth 1 … n_parts).
    #[must_use]
    pub fn trim_points(&self) -> Vec<usize> {
        (1..=self.n_parts()).map(|d| self.trim_point(d)).collect()
    }

    /// The byte range of section `j` within the payload.
    #[must_use]
    pub fn section_range(&self, j: usize) -> core::ops::Range<usize> {
        let start = self.section_offset(j);
        start..start + self.section_len(j)
    }
}

/// The largest coordinate count whose payload fits in `budget_bytes`, or
/// `None` if not even one coordinate fits.
///
/// Used by the packetizer to choose how many coordinates to put in each
/// MTU-sized packet.
#[must_use]
pub fn max_coords_for_budget(part_bits: &[u32], budget_bytes: usize) -> Option<usize> {
    let bits_per_coord: u32 = part_bits.iter().sum();
    if bits_per_coord == 0 {
        return None;
    }
    // Start from the no-alignment bound and walk down past per-section
    // byte-padding (at most one byte per section).
    let mut c = budget_bytes * 8 / bits_per_coord as usize;
    while c > 0 {
        if PayloadLayout::new(part_bits, c).total_len() <= budget_bytes {
            return Some(c);
        }
        c -= 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_example_geometry() {
        // §2: P=1, Q=31, MTU-sized packet. With a 1444-byte payload budget
        // (1500 − 20 IP − 8 UDP − 28 TrimGrad), 360 coordinates fit, and the
        // trimmed payload is 45 bytes — the paper's "45 bytes of compressed
        // payload" for ~365 coordinates (the paper does not count an
        // application header).
        let budget = 1500 - 20 - 8 - 28;
        let c = max_coords_for_budget(&[1, 31], budget).unwrap();
        assert_eq!(c, 360);
        let layout = PayloadLayout::new(&[1, 31], c);
        assert_eq!(layout.trim_point(1), 45);
        assert_eq!(layout.total_len(), 45 + 1395);
        assert!(layout.total_len() <= budget);
    }

    #[test]
    fn section_offsets_and_ranges() {
        let l = PayloadLayout::new(&[1, 8, 23], 10);
        assert_eq!(l.section_len(0), 2); // 10 bits → 2 bytes
        assert_eq!(l.section_len(1), 10); // 80 bits → 10 bytes
        assert_eq!(l.section_len(2), 29); // 230 bits → 29 bytes
        assert_eq!(l.section_offset(0), 0);
        assert_eq!(l.section_offset(1), 2);
        assert_eq!(l.section_offset(2), 12);
        assert_eq!(l.total_len(), 41);
        assert_eq!(l.section_range(1), 2..12);
        assert_eq!(l.trim_points(), vec![2, 12, 41]);
    }

    #[test]
    fn trim_point_depth_full_equals_total() {
        let l = PayloadLayout::new(&[1, 31], 100);
        assert_eq!(l.trim_point(2), l.total_len());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn trim_point_zero_rejected() {
        let _ = PayloadLayout::new(&[1, 31], 10).trim_point(0);
    }

    #[test]
    #[should_panic(expected = "empty packet")]
    fn zero_coords_rejected() {
        let _ = PayloadLayout::new(&[1, 31], 0);
    }

    #[test]
    fn single_coord_packet() {
        let l = PayloadLayout::new(&[1, 31], 1);
        assert_eq!(l.section_len(0), 1);
        assert_eq!(l.section_len(1), 4); // 31 bits → 4 bytes
        assert_eq!(l.total_len(), 5);
    }

    #[test]
    fn budget_edge_cases() {
        // Not even one coordinate fits.
        assert_eq!(max_coords_for_budget(&[1, 31], 4), None);
        // Exactly one fits (1 + 4 bytes).
        assert_eq!(max_coords_for_budget(&[1, 31], 5), Some(1));
        assert_eq!(max_coords_for_budget(&[], 100), None);
    }

    #[test]
    fn trim_ratio_matches_paper_compression_claim() {
        // §2: trimming an MTU packet with P=1 keeps head section + headers;
        // compression of the *payload* is 1 − 45/1440 ≈ 96.9%, and of the
        // whole 1500-byte packet ≈ 94% once headers are included.
        let l = PayloadLayout::new(&[1, 31], 360);
        let full_packet = 20 + 8 + 28 + l.total_len();
        let trimmed_packet = 20 + 8 + 28 + l.trim_point(1);
        let ratio = 1.0 - trimmed_packet as f64 / full_packet as f64;
        assert!((0.90..0.97).contains(&ratio), "compression ratio {ratio}");
    }

    proptest! {
        #[test]
        fn sections_tile_payload_exactly(
            widths in proptest::collection::vec(1u32..=33, 1..5),
            coords in 1usize..500
        ) {
            let l = PayloadLayout::new(&widths, coords);
            let mut expected_start = 0;
            for j in 0..l.n_parts() {
                let r = l.section_range(j);
                prop_assert_eq!(r.start, expected_start);
                expected_start = r.end;
            }
            prop_assert_eq!(expected_start, l.total_len());
            // Trim points strictly increase.
            let pts = l.trim_points();
            for w in pts.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        }

        #[test]
        fn budget_is_tight(
            widths in proptest::collection::vec(1u32..=33, 1..4),
            budget in 8usize..4000
        ) {
            if let Some(c) = max_coords_for_budget(&widths, budget) {
                // c fits; c+1 must not.
                prop_assert!(PayloadLayout::new(&widths, c).total_len() <= budget);
                prop_assert!(PayloadLayout::new(&widths, c + 1).total_len() > budget);
            } else {
                prop_assert!(PayloadLayout::new(&widths, 1).total_len() > budget);
            }
        }
    }
}
