//! Reusable frame buffers for the allocation-lean packet path.
//!
//! Building a gradient packet with [`GradPacket::build_with`] writes every
//! layer directly into one buffer. A [`FramePool`] keeps those buffers alive
//! across packets and rows, so a steady-state sender (or a benchmark's inner
//! loop) allocates only until its working set is warm and then runs
//! allocation-free: `take` a [`PacketBuf`], build into it, and `recycle` the
//! packet once its bytes have been consumed.
//!
//! The pool is a plain LIFO freelist with no locking — each worker thread or
//! sender owns its own pool, which keeps the parallel pipeline free of shared
//! mutable state (and therefore deterministic).

use crate::packet::GradPacket;
use crate::packetize::PacketizedRow;

/// A reusable frame buffer. Plain `Vec<u8>`: capacity is the asset being
/// recycled; length is set by the builder that fills it.
pub type PacketBuf = Vec<u8>;

/// A LIFO freelist of [`PacketBuf`]s.
#[derive(Debug, Default)]
pub struct FramePool {
    free: Vec<PacketBuf>,
}

impl FramePool {
    /// Creates an empty pool.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a pool pre-warmed with `n` buffers of `capacity` bytes each.
    #[must_use]
    pub fn warmed(n: usize, capacity: usize) -> Self {
        Self {
            free: (0..n).map(|_| Vec::with_capacity(capacity)).collect(),
        }
    }

    /// Takes a buffer from the pool, or a fresh empty one if none is free.
    #[must_use]
    pub fn take(&mut self) -> PacketBuf {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for reuse. Contents are cleared; the
    /// capacity is kept.
    pub fn put(&mut self, mut buf: PacketBuf) {
        buf.clear();
        self.free.push(buf);
    }

    /// Recycles a consumed packet's frame buffer.
    pub fn recycle(&mut self, pkt: GradPacket) {
        self.put(pkt.into_frame());
    }

    /// Recycles every data packet of a consumed row (the metadata packet
    /// owns no pooled frame).
    pub fn recycle_row(&mut self, row: PacketizedRow) {
        for pkt in row.packets {
            self.recycle(pkt);
        }
    }

    /// Number of free buffers currently held.
    #[must_use]
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Whether the pool holds no free buffers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.free.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_pool_is_fresh() {
        let mut pool = FramePool::new();
        assert!(pool.is_empty());
        let buf = pool.take();
        assert!(buf.is_empty());
    }

    #[test]
    fn recycled_capacity_is_reused() {
        let mut pool = FramePool::new();
        let mut buf = pool.take();
        buf.resize(1500, 0xAB);
        let cap = buf.capacity();
        pool.put(buf);
        assert_eq!(pool.free_buffers(), 1);
        let again = pool.take();
        assert!(again.is_empty(), "recycled buffers come back cleared");
        assert_eq!(again.capacity(), cap, "capacity survives the round trip");
        assert!(pool.is_empty());
    }

    #[test]
    fn warmed_pool_has_capacity_ready() {
        let mut pool = FramePool::warmed(3, 2048);
        assert_eq!(pool.free_buffers(), 3);
        assert!(pool.take().capacity() >= 2048);
    }
}
