//! Receiver-side row reassembly from trimmed and untrimmed packets.
//!
//! A [`RowAssembler`] accumulates the data packets of one row (in any order,
//! with any per-packet trim depth, with duplicates) plus its metadata packet,
//! and exposes the availability-aware [`PartialRow`] view the quant layer
//! decodes. Coordinates whose packets never arrive simply stay absent —
//! exactly the semantics of a lossy trimming fabric.

use crate::meta::RowMetaPacket;
use crate::packet::GradPacket;
use crate::{Result, WireError};
use trimgrad_quant::bitpack::{BitBuf, BitMask};
use trimgrad_quant::scheme::{PartView, PartialRow, RowMeta};
use trimgrad_quant::SchemeId;

/// The encoded (possibly padded) length for a row of `original_len`
/// coordinates under `scheme` — RHT schemes pad to the next power of two,
/// scalar schemes do not.
#[must_use]
pub fn encoded_n(scheme: SchemeId, original_len: usize) -> usize {
    if original_len == 0 {
        return 0;
    }
    match scheme {
        SchemeId::SignMagnitude | SchemeId::Stochastic | SchemeId::SubtractiveDither => {
            original_len
        }
        SchemeId::RhtOneBit | SchemeId::MultiLevelRht => original_len.next_power_of_two(),
    }
}

/// Reassembles one row from its packets.
#[derive(Debug, Clone)]
pub struct RowAssembler {
    scheme: SchemeId,
    msg_id: u32,
    row_id: u32,
    n: usize,
    parts: Vec<BitBuf>,
    masks: Vec<BitMask>,
    meta: Option<RowMeta>,
    epoch: Option<u32>,
}

impl RowAssembler {
    /// Creates an assembler for a known row identity and length.
    #[must_use]
    pub fn new(scheme: SchemeId, msg_id: u32, row_id: u32, original_len: usize) -> Self {
        let n = encoded_n(scheme, original_len);
        let part_bits = scheme.part_bits();
        Self {
            scheme,
            msg_id,
            row_id,
            n,
            parts: part_bits
                .iter()
                .map(|&w| BitBuf::zeroed(n * w as usize))
                .collect(),
            masks: part_bits.iter().map(|_| BitMask::absent(n)).collect(),
            meta: Some(RowMeta {
                original_len,
                scale: 0.0,
            }),
            epoch: None,
        }
    }

    /// Creates an assembler directly from a received metadata packet.
    #[must_use]
    pub fn from_meta(meta: &RowMetaPacket) -> Self {
        let mut a = Self::new(
            meta.scheme,
            meta.msg_id,
            meta.row_id,
            meta.original_len as usize,
        );
        a.meta = Some(meta.row_meta());
        a.epoch = Some(meta.epoch);
        a
    }

    /// The row's scheme.
    #[must_use]
    pub fn scheme(&self) -> SchemeId {
        self.scheme
    }

    /// The encoded (padded) length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The training epoch, once any packet has been ingested.
    #[must_use]
    pub fn epoch(&self) -> Option<u32> {
        self.epoch
    }

    /// Row metadata (scale is 0 until [`ingest_meta`](Self::ingest_meta)).
    #[must_use]
    pub fn meta(&self) -> Option<&RowMeta> {
        self.meta.as_ref()
    }

    /// Records the reliable metadata for this row.
    ///
    /// # Errors
    ///
    /// [`WireError::BadField`] if the identity or geometry disagrees with
    /// what the assembler was created for.
    pub fn ingest_meta(&mut self, meta: &RowMetaPacket) -> Result<()> {
        if meta.scheme != self.scheme || meta.msg_id != self.msg_id || meta.row_id != self.row_id {
            return Err(WireError::BadField("row identity"));
        }
        if encoded_n(meta.scheme, meta.original_len as usize) != self.n {
            return Err(WireError::BadField("original_len"));
        }
        self.meta = Some(meta.row_meta());
        self.epoch = Some(meta.epoch);
        Ok(())
    }

    /// Ingests one data packet (trimmed or not, duplicate or not).
    ///
    /// Availability only ever grows: a duplicate that arrives *less* trimmed
    /// than a previous copy upgrades the coordinates; a more-trimmed
    /// duplicate adds nothing but is not an error.
    ///
    /// # Errors
    ///
    /// Parse/validation errors, or [`WireError::BadField`] when the packet
    /// belongs to a different row or exceeds the row bounds.
    // trimlint: hot-path -- per-packet reassembly on the receive path
    pub fn ingest(&mut self, pkt: &GradPacket) -> Result<()> {
        let parsed = pkt.parse()?;
        let f = &parsed.fields;
        if f.scheme != self.scheme || f.msg_id != self.msg_id || f.row_id != self.row_id {
            return Err(WireError::BadField("row identity"));
        }
        let start = f.coord_start as usize;
        let count = f.coord_count as usize;
        if start + count > self.n {
            return Err(WireError::BadField("coord range"));
        }
        if f.n_parts as usize != self.parts.len() {
            return Err(WireError::BadField("n_parts"));
        }
        match self.epoch {
            None => self.epoch = Some(f.epoch),
            Some(e) if e != f.epoch => return Err(WireError::BadField("epoch")),
            Some(_) => {}
        }
        let part_bits = self.scheme.part_bits();
        // Defense in depth: every section must hold exactly the bytes its
        // declared coordinate count implies. `parse()` slices sections from
        // the layout's ranges, but nothing upstream is trusted here — a
        // short section would panic inside the bit copy below, and a long
        // one would decode garbage into the row.
        for (k, section) in parsed.sections.iter().enumerate() {
            let w = part_bits[k] as usize;
            if section.len() != (count * w).div_ceil(8) {
                return Err(WireError::BadField("section length"));
            }
        }
        for (k, section) in parsed.sections.iter().enumerate() {
            let w = part_bits[k] as usize;
            // Zero-copy: section bytes land straight in the row part's
            // backing store, no intermediate BitBuf per packet.
            self.parts[k].write_bits_from_bytes(start * w, section, count * w);
            self.masks[k].set_range(start, start + count, true);
        }
        Ok(())
    }

    /// [`RowAssembler::ingest`] that also records a
    /// [`trimgrad_trace::TraceEvent::RowAssembled`] on the ingest that
    /// completes the row's head sections (the decodable-prefix milestone).
    /// With a disabled tracer this is exactly `ingest` plus one branch.
    ///
    /// # Errors
    ///
    /// Same as [`RowAssembler::ingest`].
    pub fn ingest_traced(
        &mut self,
        pkt: &GradPacket,
        tracer: &trimgrad_trace::Tracer,
        at: u64,
    ) -> Result<()> {
        if !tracer.is_enabled() {
            return self.ingest(pkt);
        }
        let had_heads = self.heads_complete();
        self.ingest(pkt)?;
        if !had_heads && self.heads_complete() {
            tracer.emit(at, || trimgrad_trace::TraceEvent::RowAssembled {
                msg: self.msg_id,
                row: self.row_id,
                coords: trimgrad_trace::sat32(self.coords_received()),
            });
        }
        Ok(())
    }

    /// Number of coordinates whose head (part 0) has arrived.
    #[must_use]
    pub fn coords_received(&self) -> usize {
        if self.masks.is_empty() {
            return 0;
        }
        self.masks[0].count_present()
    }

    /// Whether every coordinate arrived at full depth.
    #[must_use]
    pub fn is_complete(&self) -> bool {
        self.masks.iter().all(|m| m.count_present() == self.n)
    }

    /// Whether every coordinate's head arrived (possibly trimmed deeper).
    #[must_use]
    pub fn heads_complete(&self) -> bool {
        self.coords_received() == self.n
    }

    /// The availability view for decoding.
    #[must_use]
    pub fn partial_row(&self) -> PartialRow<'_> {
        let parts = self
            .parts
            .iter()
            .zip(&self.masks)
            .map(|(buf, mask)| {
                let present = mask.count_present();
                if present == self.n {
                    PartView::Full(buf)
                } else if present == 0 {
                    PartView::Absent
                } else {
                    PartView::Masked {
                        buf,
                        present: mask.clone(),
                    }
                }
            })
            .collect();
        PartialRow { n: self.n, parts }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::NetAddrs;
    use crate::packetize::{packetize_row, PacketizeConfig};
    use trimgrad_quant::rht1bit::RhtOneBit;
    use trimgrad_quant::scheme::TrimmableScheme;
    use trimgrad_quant::signmag::SignMagnitude;

    fn cfg() -> PacketizeConfig {
        PacketizeConfig {
            mtu: 1500,
            net: NetAddrs::between_hosts(1, 2),
            msg_id: 9,
            row_id: 4,
            epoch: 2,
        }
    }

    fn assembler_for(enc: &trimgrad_quant::EncodedRow, c: &PacketizeConfig) -> RowAssembler {
        RowAssembler::new(enc.scheme, c.msg_id, c.row_id, enc.meta.original_len)
    }

    #[test]
    fn encoded_n_rules() {
        assert_eq!(encoded_n(SchemeId::SignMagnitude, 100), 100);
        assert_eq!(encoded_n(SchemeId::Stochastic, 100), 100);
        assert_eq!(encoded_n(SchemeId::RhtOneBit, 100), 128);
        assert_eq!(encoded_n(SchemeId::MultiLevelRht, 128), 128);
        assert_eq!(encoded_n(SchemeId::RhtOneBit, 0), 0);
    }

    #[test]
    fn traced_ingest_marks_head_completion_exactly_once() {
        let row: Vec<f32> = (0..1000).map(|i| (i as f32).cos()).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        assert!(pr.packets.len() > 1, "need a multi-packet row");
        let tracer = trimgrad_trace::Tracer::enabled(64);
        let mut asm = assembler_for(&enc, &c);
        for (i, pkt) in pr.packets.iter().enumerate() {
            asm.ingest_traced(pkt, &tracer, i as u64).unwrap();
        }
        // Duplicates after completion add nothing.
        asm.ingest_traced(&pr.packets[0], &tracer, 99).unwrap();
        let trace = tracer.snapshot();
        assert_eq!(trace.records.len(), 1, "one completion event");
        assert_eq!(trace.records[0].at, pr.packets.len() as u64 - 1);
        match trace.records[0].event {
            trimgrad_trace::TraceEvent::RowAssembled { msg, row, coords } => {
                assert_eq!((msg, row), (9, 4));
                assert_eq!(coords as usize, asm.coords_received());
            }
            ref other => panic!("unexpected event {other:?}"),
        }
        // Disabled tracer: behaves exactly like plain ingest.
        let mut silent = assembler_for(&enc, &c);
        let off = trimgrad_trace::Tracer::disabled();
        for pkt in &pr.packets {
            silent.ingest_traced(pkt, &off, 0).unwrap();
        }
        assert!(silent.heads_complete());
        assert_eq!(off.events_emitted(), 0);
    }

    #[test]
    fn lossless_roundtrip_through_packets() {
        let row: Vec<f32> = (0..1000).map(|i| ((i * 31) % 97) as f32 - 48.0).collect();
        let scheme = RhtOneBit;
        let seed = 77;
        let enc = scheme.encode(&row, seed);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        let mut asm = assembler_for(&enc, &c);
        asm.ingest_meta(&pr.meta).unwrap();
        for pkt in &pr.packets {
            asm.ingest(pkt).unwrap();
        }
        assert!(asm.is_complete());
        assert_eq!(asm.epoch(), Some(2));
        let dec = scheme
            .decode(&asm.partial_row(), asm.meta().unwrap(), seed)
            .unwrap();
        for (d, v) in dec.iter().zip(&row) {
            assert!((d - v).abs() < 1e-3, "{d} vs {v}");
        }
    }

    #[test]
    fn trimmed_packets_decode_with_heads() {
        let row: Vec<f32> = (0..800).map(|i| ((i as f32) * 0.37).sin()).collect();
        let scheme = RhtOneBit;
        let seed = 5;
        let enc = scheme.encode(&row, seed);
        let c = cfg();
        let mut pr = packetize_row(&enc, &c);
        // Trim every second packet down to heads (as a congested switch would).
        for (i, pkt) in pr.packets.iter_mut().enumerate() {
            if i % 2 == 0 {
                pkt.trim_to_depth(1).unwrap();
            }
        }
        let mut asm = assembler_for(&enc, &c);
        asm.ingest_meta(&pr.meta).unwrap();
        for pkt in &pr.packets {
            asm.ingest(pkt).unwrap();
        }
        assert!(asm.heads_complete());
        assert!(!asm.is_complete());
        let dec = scheme
            .decode(&asm.partial_row(), asm.meta().unwrap(), seed)
            .unwrap();
        // Still a decent estimate: far better than all-zeros.
        let nmse = trimgrad_quant::error::nmse(&dec, &row);
        assert!(nmse < 0.6, "nmse {nmse}");
    }

    #[test]
    fn lost_packets_leave_coords_absent() {
        let row: Vec<f32> = (0..720).map(|i| i as f32).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        assert_eq!(pr.packets.len(), 2);
        let mut asm = assembler_for(&enc, &c);
        asm.ingest_meta(&pr.meta).unwrap();
        asm.ingest(&pr.packets[0]).unwrap(); // drop packet 1 entirely
        assert_eq!(asm.coords_received(), 360);
        let dec = SignMagnitude
            .decode(&asm.partial_row(), asm.meta().unwrap(), 0)
            .unwrap();
        // Missing coordinates decode to the neutral 0.
        assert!(dec[360..].iter().all(|&d| d == 0.0));
        assert!((dec[0] - row[0]).abs() < 1e-6);
    }

    #[test]
    fn duplicate_upgrade_and_downgrade() {
        let row: Vec<f32> = (0..100).map(|i| i as f32 - 50.0).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        let full = pr.packets[0].clone();
        let mut trimmed = full.clone();
        trimmed.trim_to_depth(1).unwrap();

        // Trimmed first, then full: upgrades to complete.
        let mut asm = assembler_for(&enc, &c);
        asm.ingest(&trimmed).unwrap();
        assert!(!asm.is_complete());
        asm.ingest(&full).unwrap();
        assert!(asm.is_complete());

        // Full first, then trimmed duplicate: stays complete.
        let mut asm = assembler_for(&enc, &c);
        asm.ingest(&full).unwrap();
        asm.ingest(&trimmed).unwrap();
        assert!(asm.is_complete());
    }

    #[test]
    fn hand_truncated_packet_is_rejected_without_state_change() {
        // Regression: a data packet whose payload was cut mid-section (with
        // every outer length and checksum patched to look honest) must be
        // rejected by ingest without panicking and without touching the
        // already-assembled coordinates.
        use crate::ethernet::{self, EthernetFrame};
        use crate::ipv4::{self, Ipv4Packet};
        use crate::udp::UdpDatagram;

        let row: Vec<f32> = (0..720).map(|i| i as f32).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        assert_eq!(pr.packets.len(), 2);
        let mut asm = assembler_for(&enc, &c);
        asm.ingest(&pr.packets[0]).unwrap();
        let before = asm.coords_received();

        // Chop 7 bytes off the tail section, then patch the UDP and IPv4
        // length/checksum fields so only the TrimGrad body is short.
        let mut bytes = pr.packets[1].clone().into_frame();
        let (src_ip, dst_ip) = {
            let eth = EthernetFrame::new_checked(&bytes[..]).unwrap();
            let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
            (ip.src(), ip.dst())
        };
        let cut = bytes.len() - 7;
        bytes.truncate(cut);
        let new_ip_len = u16::try_from(cut - ethernet::HEADER_LEN).unwrap();
        let new_udp_len = new_ip_len - u16::try_from(ipv4::HEADER_LEN).unwrap();
        let udp_start = ethernet::HEADER_LEN + ipv4::HEADER_LEN;
        bytes[udp_start + 4..udp_start + 6].copy_from_slice(&new_udp_len.to_be_bytes());
        {
            let mut dgram = UdpDatagram::new_checked(&mut bytes[udp_start..]).unwrap();
            dgram.fill_checksum(src_ip, dst_ip);
        }
        bytes[ethernet::HEADER_LEN + 2..ethernet::HEADER_LEN + 4]
            .copy_from_slice(&new_ip_len.to_be_bytes());
        {
            let mut ip = Ipv4Packet::new_checked(&mut bytes[ethernet::HEADER_LEN..]).unwrap();
            ip.fill_checksum();
        }
        let bad = GradPacket::from_frame(bytes);
        assert!(asm.ingest(&bad).is_err(), "truncated body must not ingest");
        assert_eq!(asm.coords_received(), before, "availability unchanged");
        assert_eq!(asm.epoch(), Some(c.epoch));
    }

    #[test]
    fn rejects_foreign_packets() {
        let row: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        // Wrong row id.
        let mut asm = RowAssembler::new(enc.scheme, c.msg_id, 999, row.len());
        assert_eq!(
            asm.ingest(&pr.packets[0]).unwrap_err(),
            WireError::BadField("row identity")
        );
        // Wrong meta identity.
        let mut asm = assembler_for(&enc, &c);
        let mut bad_meta = pr.meta;
        bad_meta.msg_id = 123;
        assert_eq!(
            asm.ingest_meta(&bad_meta).unwrap_err(),
            WireError::BadField("row identity")
        );
    }

    #[test]
    fn rejects_epoch_mismatch() {
        let row: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let enc = SignMagnitude.encode(&row, 0);
        let c1 = cfg();
        let c2 = PacketizeConfig { epoch: 3, ..c1 };
        let p1 = packetize_row(&enc, &c1);
        let p2 = packetize_row(&enc, &c2);
        let mut asm = assembler_for(&enc, &c1);
        asm.ingest(&p1.packets[0]).unwrap();
        assert_eq!(
            asm.ingest(&p2.packets[0]).unwrap_err(),
            WireError::BadField("epoch")
        );
    }

    #[test]
    fn empty_row_assembler() {
        let asm = RowAssembler::new(SchemeId::RhtOneBit, 1, 1, 0);
        assert_eq!(asm.n(), 0);
        assert!(asm.is_complete());
        assert_eq!(asm.coords_received(), 0);
    }
}
