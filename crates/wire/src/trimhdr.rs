//! The TrimGrad application header.
//!
//! Sits directly after UDP in every gradient data packet. It tells switches
//! *how* the payload may be trimmed (`n_parts`, `trim_depth`) and tells the
//! receiver *which coordinates* of *which row* the packet carries.
//!
//! ```text
//!  0      2    3    4    5    6      8      12     16     20     22     24    28
//! ┌──────┬────┬────┬────┬────┬──────┬──────┬──────┬──────┬──────┬──────┬──────┐
//! │magic │ver │sch │#pt │dep │chunk │msg_id│row_id│ start│count │flags │epoch │
//! │ u16  │ u8 │ u8 │ u8 │ u8 │ u16  │ u32  │ u32  │ u32  │ u16  │ u16  │ u32  │
//! └──────┴────┴────┴────┴────┴──────┴──────┴──────┴──────┴──────┴──────┴──────┘
//! ```
//!
//! `trim_depth` starts equal to `n_parts` and is decremented by a switch when
//! it truncates the payload at a section boundary; the receiver uses it to
//! know how many parts of each carried coordinate are present.

use crate::{Result, WireError};
use trimgrad_quant::SchemeId;

/// Header magic: ASCII "TG".
pub const MAGIC: u16 = 0x5447;

/// Current header version.
pub const VERSION: u8 = 1;

/// Header length in bytes.
pub const HEADER_LEN: usize = 28;

/// Flag bit: this packet must never be trimmed or dropped by policy
/// (metadata and control packets set it).
pub const FLAG_RELIABLE: u16 = 0x0001;

/// Flag bit: this is the last chunk of its row.
pub const FLAG_LAST_CHUNK: u16 = 0x0002;

/// A typed view over a TrimGrad header (+ trailing payload sections).
#[derive(Debug, Clone)]
pub struct TrimGradHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TrimGradHeader<T> {
    /// Wraps a buffer, validating magic, version, scheme, and depth fields.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`], [`WireError::BadMagic`],
    /// [`WireError::BadVersion`], or [`WireError::BadField`].
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let h = Self { buffer };
        if h.magic() != MAGIC {
            return Err(WireError::BadMagic);
        }
        if h.version() != VERSION {
            return Err(WireError::BadVersion);
        }
        let Some(scheme) = SchemeId::from_u8(h.buffer.as_ref()[3]) else {
            return Err(WireError::BadField("scheme"));
        };
        let n_parts = h.n_parts();
        let depth = h.trim_depth();
        // n_parts must agree with the scheme's real part count: a crafted
        // header claiming more parts than the scheme has would otherwise
        // drive payload-layout arithmetic (and its `1..=n_parts` depth
        // assertion) out of bounds downstream.
        if n_parts as usize != scheme.part_bits().len() {
            return Err(WireError::BadField("n_parts"));
        }
        if depth == 0 || depth > n_parts {
            return Err(WireError::BadField("trim_depth"));
        }
        if h.coord_count() == 0 {
            return Err(WireError::BadField("coord_count"));
        }
        Ok(h)
    }

    fn b(&self) -> &[u8] {
        self.buffer.as_ref()
    }

    /// Magic constant.
    #[must_use]
    pub fn magic(&self) -> u16 {
        u16::from_be_bytes([self.b()[0], self.b()[1]])
    }

    /// Header version.
    #[must_use]
    pub fn version(&self) -> u8 {
        self.b()[2]
    }

    /// Encoding scheme.
    #[must_use]
    pub fn scheme(&self) -> SchemeId {
        // trimlint: allow(no-panic) -- the scheme byte is validated by new_checked (readers) or written via set_scheme (builders) before this getter runs
        SchemeId::from_u8(self.b()[3]).expect("validated in new_checked")
    }

    /// Number of parts the full encoding has.
    #[must_use]
    pub fn n_parts(&self) -> u8 {
        self.b()[4]
    }

    /// Number of leading parts still present (`1..=n_parts`).
    #[must_use]
    pub fn trim_depth(&self) -> u8 {
        self.b()[5]
    }

    /// Whether any trimming has occurred.
    #[must_use]
    pub fn is_trimmed(&self) -> bool {
        self.trim_depth() < self.n_parts()
    }

    /// Chunk index within the row.
    #[must_use]
    pub fn chunk_id(&self) -> u16 {
        u16::from_be_bytes([self.b()[6], self.b()[7]])
    }

    /// Collective-communication message id.
    #[must_use]
    pub fn msg_id(&self) -> u32 {
        u32::from_be_bytes([self.b()[8], self.b()[9], self.b()[10], self.b()[11]])
    }

    /// Row index within the message.
    #[must_use]
    pub fn row_id(&self) -> u32 {
        u32::from_be_bytes([self.b()[12], self.b()[13], self.b()[14], self.b()[15]])
    }

    /// First coordinate (within the row) carried by this packet.
    #[must_use]
    pub fn coord_start(&self) -> u32 {
        u32::from_be_bytes([self.b()[16], self.b()[17], self.b()[18], self.b()[19]])
    }

    /// Number of coordinates carried.
    #[must_use]
    pub fn coord_count(&self) -> u16 {
        u16::from_be_bytes([self.b()[20], self.b()[21]])
    }

    /// Flag bits.
    #[must_use]
    pub fn flags(&self) -> u16 {
        u16::from_be_bytes([self.b()[22], self.b()[23]])
    }

    /// Whether the reliable (never trim) flag is set.
    #[must_use]
    pub fn is_reliable(&self) -> bool {
        self.flags() & FLAG_RELIABLE != 0
    }

    /// Training epoch (seed context for shared randomness).
    #[must_use]
    pub fn epoch(&self) -> u32 {
        u32::from_be_bytes([self.b()[24], self.b()[25], self.b()[26], self.b()[27]])
    }

    /// The payload sections after the header.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        &self.b()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TrimGradHeader<T> {
    /// Wraps a buffer for writing without validation (fields are garbage
    /// until set). The buffer must be at least [`HEADER_LEN`] bytes.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] for undersized buffers.
    pub fn new_unchecked_mut(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    fn bm(&mut self) -> &mut [u8] {
        self.buffer.as_mut()
    }

    /// Writes magic and version.
    pub fn init(&mut self) {
        let m = MAGIC.to_be_bytes();
        self.bm()[0] = m[0];
        self.bm()[1] = m[1];
        self.bm()[2] = VERSION;
    }

    /// Sets the scheme id.
    pub fn set_scheme(&mut self, s: SchemeId) {
        self.bm()[3] = s.as_u8();
    }

    /// Sets the part count.
    pub fn set_n_parts(&mut self, n: u8) {
        self.bm()[4] = n;
    }

    /// Sets the current trim depth.
    pub fn set_trim_depth(&mut self, d: u8) {
        self.bm()[5] = d;
    }

    /// Sets the chunk id.
    pub fn set_chunk_id(&mut self, c: u16) {
        let v = c.to_be_bytes();
        self.bm()[6..8].copy_from_slice(&v);
    }

    /// Sets the message id.
    pub fn set_msg_id(&mut self, v: u32) {
        let v = v.to_be_bytes();
        self.bm()[8..12].copy_from_slice(&v);
    }

    /// Sets the row id.
    pub fn set_row_id(&mut self, v: u32) {
        let v = v.to_be_bytes();
        self.bm()[12..16].copy_from_slice(&v);
    }

    /// Sets the first-coordinate index.
    pub fn set_coord_start(&mut self, v: u32) {
        let v = v.to_be_bytes();
        self.bm()[16..20].copy_from_slice(&v);
    }

    /// Sets the coordinate count.
    pub fn set_coord_count(&mut self, v: u16) {
        let v = v.to_be_bytes();
        self.bm()[20..22].copy_from_slice(&v);
    }

    /// Sets the flag bits.
    pub fn set_flags(&mut self, v: u16) {
        let v = v.to_be_bytes();
        self.bm()[22..24].copy_from_slice(&v);
    }

    /// Sets the epoch.
    pub fn set_epoch(&mut self, v: u32) {
        let v = v.to_be_bytes();
        self.bm()[24..28].copy_from_slice(&v);
    }
}

/// Plain-struct form of the header, for construction convenience.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrimGradFields {
    /// Encoding scheme.
    pub scheme: SchemeId,
    /// Total part count of the encoding.
    pub n_parts: u8,
    /// Currently present leading parts.
    pub trim_depth: u8,
    /// Chunk index within the row.
    pub chunk_id: u16,
    /// Collective message id.
    pub msg_id: u32,
    /// Row index within the message.
    pub row_id: u32,
    /// First coordinate carried.
    pub coord_start: u32,
    /// Coordinates carried.
    pub coord_count: u16,
    /// Flag bits.
    pub flags: u16,
    /// Training epoch.
    pub epoch: u32,
}

impl TrimGradFields {
    /// Serializes into a fresh [`HEADER_LEN`]-byte header.
    #[must_use]
    pub fn to_bytes(&self) -> [u8; HEADER_LEN] {
        let mut buf = [0u8; HEADER_LEN];
        // Same-module construction: the array is exactly HEADER_LEN, so the
        // `new_unchecked_mut` length test cannot fail — skip the fallible path.
        let mut h = TrimGradHeader {
            buffer: &mut buf[..],
        };
        h.init();
        h.set_scheme(self.scheme);
        h.set_n_parts(self.n_parts);
        h.set_trim_depth(self.trim_depth);
        h.set_chunk_id(self.chunk_id);
        h.set_msg_id(self.msg_id);
        h.set_row_id(self.row_id);
        h.set_coord_start(self.coord_start);
        h.set_coord_count(self.coord_count);
        h.set_flags(self.flags);
        h.set_epoch(self.epoch);
        buf
    }

    /// Parses from a validated header view.
    #[must_use]
    pub fn from_header<T: AsRef<[u8]>>(h: &TrimGradHeader<T>) -> Self {
        Self {
            scheme: h.scheme(),
            n_parts: h.n_parts(),
            trim_depth: h.trim_depth(),
            chunk_id: h.chunk_id(),
            msg_id: h.msg_id(),
            row_id: h.row_id(),
            coord_start: h.coord_start(),
            coord_count: h.coord_count(),
            flags: h.flags(),
            epoch: h.epoch(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fields() -> TrimGradFields {
        TrimGradFields {
            scheme: SchemeId::RhtOneBit,
            n_parts: 2,
            trim_depth: 2,
            chunk_id: 3,
            msg_id: 0xAABB_CCDD,
            row_id: 7,
            coord_start: 1024,
            coord_count: 360,
            flags: FLAG_LAST_CHUNK,
            epoch: 15,
        }
    }

    #[test]
    fn roundtrip_all_fields() {
        let f = fields();
        let bytes = f.to_bytes();
        let h = TrimGradHeader::new_checked(&bytes[..]).unwrap();
        assert_eq!(TrimGradFields::from_header(&h), f);
        assert!(!h.is_trimmed());
        assert!(!h.is_reliable());
        assert!(h.payload().is_empty());
    }

    #[test]
    fn trimmed_and_reliable_flags() {
        let mut f = fields();
        f.trim_depth = 1;
        f.flags = FLAG_RELIABLE;
        let bytes = f.to_bytes();
        let h = TrimGradHeader::new_checked(&bytes[..]).unwrap();
        assert!(h.is_trimmed());
        assert!(h.is_reliable());
    }

    #[test]
    fn rejects_bad_magic_version_scheme() {
        let good = fields().to_bytes();

        let mut bad = good;
        bad[0] = 0;
        assert_eq!(
            TrimGradHeader::new_checked(&bad[..]).unwrap_err(),
            WireError::BadMagic
        );

        let mut bad = good;
        bad[2] = 99;
        assert_eq!(
            TrimGradHeader::new_checked(&bad[..]).unwrap_err(),
            WireError::BadVersion
        );

        let mut bad = good;
        bad[3] = 200;
        assert_eq!(
            TrimGradHeader::new_checked(&bad[..]).unwrap_err(),
            WireError::BadField("scheme")
        );
    }

    #[test]
    fn rejects_inconsistent_depths() {
        let mut f = fields();
        f.trim_depth = 3; // > n_parts = 2
        assert_eq!(
            TrimGradHeader::new_checked(&f.to_bytes()[..]).unwrap_err(),
            WireError::BadField("trim_depth")
        );
        let mut f = fields();
        f.trim_depth = 0;
        assert_eq!(
            TrimGradHeader::new_checked(&f.to_bytes()[..]).unwrap_err(),
            WireError::BadField("trim_depth")
        );
        let mut f = fields();
        f.n_parts = 0;
        f.trim_depth = 0;
        assert_eq!(
            TrimGradHeader::new_checked(&f.to_bytes()[..]).unwrap_err(),
            WireError::BadField("n_parts")
        );
    }

    #[test]
    fn rejects_n_parts_scheme_mismatch() {
        // Regression: a crafted header claiming more parts than its scheme
        // really has used to pass validation and drive the payload-layout
        // arithmetic (which indexes `part_bits()` by depth) out of bounds.
        let mut f = fields(); // RhtOneBit has exactly 2 parts
        f.n_parts = 3;
        f.trim_depth = 3;
        assert_eq!(
            TrimGradHeader::new_checked(&f.to_bytes()[..]).unwrap_err(),
            WireError::BadField("n_parts")
        );
        let mut f = fields();
        f.n_parts = 1;
        f.trim_depth = 1;
        assert_eq!(
            TrimGradHeader::new_checked(&f.to_bytes()[..]).unwrap_err(),
            WireError::BadField("n_parts")
        );
    }

    #[test]
    fn rejects_zero_coords_and_short_buffer() {
        let mut f = fields();
        f.coord_count = 0;
        assert_eq!(
            TrimGradHeader::new_checked(&f.to_bytes()[..]).unwrap_err(),
            WireError::BadField("coord_count")
        );
        assert_eq!(
            TrimGradHeader::new_checked(&[0u8; 27][..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn payload_follows_header() {
        let mut buf = fields().to_bytes().to_vec();
        buf.extend_from_slice(&[9, 8, 7]);
        let h = TrimGradHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(h.payload(), &[9, 8, 7]);
    }
}
