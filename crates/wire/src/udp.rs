//! UDP datagram view.
//!
//! The TrimGrad transport runs over UDP (like NDP and the UEC trimming
//! profiles). Because a trimming switch truncates the datagram in flight,
//! the UDP checksum of a trimmed packet is recomputed by the switch along
//! with the length — see [`fill_checksum`](UdpDatagram::fill_checksum).

use crate::ipv4::Ipv4Addr;
use crate::{ones_complement_sum, Result, WireError};

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// Destination port for trimmable gradient data packets.
pub const PORT_GRADIENT: u16 = 9100;

/// Destination port for reliable row-metadata packets.
pub const PORT_METADATA: u16 = 9101;

/// Destination port for transport control (ACK/NACK/pull) packets.
pub const PORT_CONTROL: u16 = 9102;

/// A typed view over a UDP datagram (header + payload).
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer, validating the length field.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when the buffer cannot hold the header or the
    /// claimed length; [`WireError::BadField`] when the length field is
    /// smaller than the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let b = buffer.as_ref();
        if b.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = u16::from_be_bytes([b[4], b[5]]) as usize;
        if len < HEADER_LEN {
            return Err(WireError::BadField("length"));
        }
        if b.len() < len {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Source port.
    #[must_use]
    pub fn src_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Destination port.
    #[must_use]
    pub fn dst_port(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[2], b[3]])
    }

    /// Length field (header + payload).
    #[must_use]
    pub fn len_field(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[4], b[5]])
    }

    /// Checksum field (0 = not computed, legal for IPv4).
    #[must_use]
    pub fn checksum(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[6], b[7]])
    }

    /// Payload bytes.
    #[must_use]
    pub fn payload(&self) -> &[u8] {
        let len = self.len_field() as usize;
        &self.buffer.as_ref()[HEADER_LEN..len]
    }

    /// Verifies the checksum against the IPv4 pseudo-header. A zero checksum
    /// (not computed) verifies trivially.
    #[must_use]
    pub fn verify_checksum(&self, src: Ipv4Addr, dst: Ipv4Addr) -> bool {
        if self.checksum() == 0 {
            return true;
        }
        let sum = pseudo_header_sum(src, dst, self.len_field());
        let len = self.len_field() as usize;
        ones_complement_sum(&self.buffer.as_ref()[..len], sum) == 0xFFFF
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        self.buffer.as_mut()[0..2].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        self.buffer.as_mut()[2..4].copy_from_slice(&p.to_be_bytes());
    }

    /// Sets the length field.
    pub fn set_len_field(&mut self, len: u16) {
        self.buffer.as_mut()[4..6].copy_from_slice(&len.to_be_bytes());
    }

    /// Mutable payload access.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = u16::from_be_bytes([self.buffer.as_ref()[4], self.buffer.as_ref()[5]]) as usize;
        &mut self.buffer.as_mut()[HEADER_LEN..len]
    }

    /// Computes and writes the checksum over the pseudo-header and datagram.
    /// Per RFC 768, a computed sum of 0 is transmitted as `0xFFFF`.
    pub fn fill_checksum(&mut self, src: Ipv4Addr, dst: Ipv4Addr) {
        let len = u16::from_be_bytes([self.buffer.as_ref()[4], self.buffer.as_ref()[5]]);
        {
            let b = self.buffer.as_mut();
            b[6] = 0;
            b[7] = 0;
        }
        let sum = pseudo_header_sum(src, dst, len);
        let csum = !ones_complement_sum(&self.buffer.as_ref()[..len as usize], sum);
        let csum = if csum == 0 { 0xFFFF } else { csum };
        self.buffer.as_mut()[6..8].copy_from_slice(&csum.to_be_bytes());
    }
}

/// One's-complement sum of the IPv4 pseudo-header for UDP.
fn pseudo_header_sum(src: Ipv4Addr, dst: Ipv4Addr, udp_len: u16) -> u16 {
    let mut pseudo = [0u8; 12];
    pseudo[0..4].copy_from_slice(&src.0);
    pseudo[4..8].copy_from_slice(&dst.0);
    pseudo[9] = crate::ipv4::PROTO_UDP;
    pseudo[10..12].copy_from_slice(&udp_len.to_be_bytes());
    ones_complement_sum(&pseudo, 0)
}

/// Builds a complete datagram with a valid checksum.
///
/// # Panics
///
/// Panics if the datagram would exceed the 16-bit UDP length field.
#[must_use]
pub fn build_datagram(
    src: Ipv4Addr,
    dst: Ipv4Addr,
    src_port: u16,
    dst_port: u16,
    payload: &[u8],
) -> Vec<u8> {
    let len = HEADER_LEN + payload.len();
    let mut buf = vec![0u8; len];
    let len_field = crate::narrow::to_u16(len, "UDP length");
    buf[4..6].copy_from_slice(&len_field.to_be_bytes());
    // Same-module construction: the buffer is sized for the header above, so
    // the `new_checked` length test cannot fail — skip the fallible path.
    let mut d = UdpDatagram {
        buffer: &mut buf[..],
    };
    d.set_src_port(src_port);
    d.set_dst_port(dst_port);
    d.payload_mut().copy_from_slice(payload);
    d.fill_checksum(src, dst);
    buf
}

/// Writes the 8-byte header (ports, length, checksum zeroed) into the front
/// of `buf` — the in-place form of [`build_datagram`] for recycled frame
/// buffers. The checksum covers the payload, so call [`fill_checksum_in`]
/// once the payload bytes are in place.
///
/// # Panics
///
/// Panics if `buf` is shorter than [`HEADER_LEN`].
pub fn write_header(buf: &mut [u8], src_port: u16, dst_port: u16, len_field: u16) {
    assert!(buf.len() >= HEADER_LEN, "buffer too short for UDP header");
    // Same-module construction: length checked above, skip the fallible path.
    let mut d = UdpDatagram { buffer: &mut *buf };
    d.set_src_port(src_port);
    d.set_dst_port(dst_port);
    d.set_len_field(len_field);
    buf[6] = 0;
    buf[7] = 0;
}

/// Computes and writes the checksum of the datagram at the front of `buf`
/// (header's length field decides how many bytes are covered).
///
/// # Panics
///
/// Panics if `buf` cannot hold the datagram its length field claims.
pub fn fill_checksum_in(buf: &mut [u8], src: Ipv4Addr, dst: Ipv4Addr) {
    assert!(buf.len() >= HEADER_LEN, "buffer too short for UDP header");
    let len = u16::from_be_bytes([buf[4], buf[5]]) as usize;
    assert!(buf.len() >= len, "buffer shorter than UDP length field");
    // Same-module construction: lengths checked above.
    let mut d = UdpDatagram { buffer: buf };
    d.fill_checksum(src, dst);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs() -> (Ipv4Addr, Ipv4Addr) {
        (Ipv4Addr::for_host(1), Ipv4Addr::for_host(2))
    }

    #[test]
    fn build_parse_roundtrip() {
        let (src, dst) = addrs();
        let buf = build_datagram(src, dst, 5555, PORT_GRADIENT, b"hello");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert_eq!(d.src_port(), 5555);
        assert_eq!(d.dst_port(), PORT_GRADIENT);
        assert_eq!(d.len_field() as usize, 13);
        assert_eq!(d.payload(), b"hello");
        assert!(d.verify_checksum(src, dst));
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let (src, dst) = addrs();
        let mut buf = build_datagram(src, dst, 1, 2, b"payload");
        buf[10] ^= 0x01;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(src, dst));
    }

    #[test]
    fn checksum_detects_wrong_pseudo_header() {
        let (src, dst) = addrs();
        let buf = build_datagram(src, dst, 1, 2, b"payload");
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(!d.verify_checksum(src, Ipv4Addr::for_host(99)));
    }

    #[test]
    fn zero_checksum_passes() {
        let (src, dst) = addrs();
        let mut buf = build_datagram(src, dst, 1, 2, b"x");
        buf[6] = 0;
        buf[7] = 0;
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(src, dst));
    }

    #[test]
    fn rejects_bad_lengths() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).unwrap_err(),
            WireError::Truncated
        );
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // len < header
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            WireError::BadField("length")
        );
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&20u16.to_be_bytes()); // len > buffer
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).unwrap_err(),
            WireError::Truncated
        );
    }

    #[test]
    fn trim_then_refill_checksum_is_valid() {
        // The switch path: truncate payload, patch length, recompute checksum.
        let (src, dst) = addrs();
        let mut buf = build_datagram(src, dst, 1, PORT_GRADIENT, &[0xCC; 64]);
        buf.truncate(HEADER_LEN + 16);
        buf[4..6].copy_from_slice(&((HEADER_LEN + 16) as u16).to_be_bytes());
        let mut d = UdpDatagram::new_checked(&mut buf[..]).unwrap();
        d.fill_checksum(src, dst);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.verify_checksum(src, dst));
        assert_eq!(d.payload().len(), 16);
    }

    #[test]
    fn empty_payload_datagram() {
        let (src, dst) = addrs();
        let buf = build_datagram(src, dst, 9, 10, &[]);
        let d = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(d.payload().is_empty());
        assert!(d.verify_checksum(src, dst));
    }
}
