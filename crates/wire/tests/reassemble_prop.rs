//! Adversarial property tests for [`RowAssembler`]: arbitrary interleavings
//! of trimmed, duplicated, reordered, and foreign packets must never panic,
//! availability must be monotone non-decreasing event by event, and the
//! final decode must be bit-identical to the decode of the best copy of
//! each packet — duplicates and hostile packets can neither improve nor
//! degrade the assembled row.

use proptest::prelude::*;
use trimgrad_hadamard::prng::Xoshiro256StarStar;
use trimgrad_quant::scheme::PartView;
use trimgrad_quant::{scheme_for, SchemeId};
use trimgrad_wire::packet::{GradPacket, NetAddrs};
use trimgrad_wire::packetize::{packetize_row, PacketizeConfig};
use trimgrad_wire::reassemble::RowAssembler;

fn cfg() -> PacketizeConfig {
    PacketizeConfig {
        mtu: 700,
        net: NetAddrs::between_hosts(1, 2),
        msg_id: 3,
        row_id: 1,
        epoch: 2,
    }
}

fn row(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_f32_range(-10.0, 10.0)).collect()
}

/// Total per-part coordinate availability — the quantity that must only grow.
fn availability(asm: &RowAssembler) -> usize {
    asm.partial_row()
        .parts
        .iter()
        .map(|p| match p {
            PartView::Full(_) => asm.n(),
            PartView::Absent => 0,
            PartView::Masked { present, .. } => present.count_present(),
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feed the assembler a shuffled mix of (possibly trimmed, possibly
    /// duplicated) legitimate packets plus wrong-row, wrong-epoch, and
    /// hand-truncated hostile packets. Invariants:
    ///
    /// * no ingest call panics (hostile ones return `Err`);
    /// * availability is monotone non-decreasing after every event;
    /// * the final decode equals, bit for bit, the decode of an assembler
    ///   fed only the least-trimmed surviving copy of each packet.
    #[test]
    fn adversarial_interleavings_keep_assembler_sound(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..900,
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        fates in proptest::collection::vec(0u8..=14, 1..32)
    ) {
        let scheme_id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(scheme_id);
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let c = cfg();
        let pr = packetize_row(&enc, &c);
        let n_parts = scheme_id.part_bits().len();

        // Expand per-packet fates into delivery events. fate % 5 is the
        // surviving depth (0 = the packet is lost entirely), fate / 5 adds
        // up to two duplicate copies at other depths.
        let mut events: Vec<GradPacket> = Vec::new();
        let mut best_depth = vec![0usize; pr.packets.len()];
        for (i, pkt) in pr.packets.iter().enumerate() {
            let fate = fates[i % fates.len()];
            let depth = ((fate % 5) as usize).min(n_parts);
            if depth == 0 {
                continue;
            }
            let copies = 1 + (fate / 5) as usize;
            for copy in 0..copies {
                let d = if copy == 0 {
                    depth
                } else {
                    1 + (depth + copy) % n_parts
                };
                let mut p = pkt.clone();
                if d < n_parts {
                    p.trim_to_depth(d as u8).expect("trimmable");
                }
                best_depth[i] = best_depth[i].max(d);
                events.push(p);
            }
        }
        // Hostile traffic: a packet for another row, a packet from another
        // epoch, and a frame whose tail bytes were chopped off.
        let foreign = packetize_row(&enc, &PacketizeConfig { row_id: 999, ..cfg() });
        let stale = packetize_row(&enc, &PacketizeConfig { epoch: 7, ..cfg() });
        events.push(foreign.packets[0].clone());
        events.push(stale.packets[0].clone());
        let mut chopped = pr.packets[0].clone().into_frame();
        chopped.truncate(chopped.len() - 3);
        events.push(GradPacket::from_frame(chopped));

        // Reorder: seeded Fisher–Yates shuffle of the event list.
        let mut rng = Xoshiro256StarStar::new(shuffle_seed);
        for i in (1..events.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            events.swap(i, j);
        }

        let mut asm = RowAssembler::new(scheme_id, c.msg_id, c.row_id, len);
        asm.ingest_meta(&pr.meta).expect("meta matches");
        let mut prev = availability(&asm);
        for ev in &events {
            let _ = asm.ingest(ev); // hostile events return Err; none may panic
            let now = availability(&asm);
            prop_assert!(now >= prev, "availability shrank: {now} < {prev}");
            prev = now;
        }

        // Reference: only the best surviving copy of each packet, in order.
        let mut reference = RowAssembler::new(scheme_id, c.msg_id, c.row_id, len);
        reference.ingest_meta(&pr.meta).expect("meta matches");
        for (i, pkt) in pr.packets.iter().enumerate() {
            if best_depth[i] == 0 {
                continue;
            }
            let mut p = pkt.clone();
            if best_depth[i] < n_parts {
                p.trim_to_depth(best_depth[i] as u8).expect("trimmable");
            }
            reference.ingest(&p).expect("clean ingest");
        }
        prop_assert_eq!(availability(&asm), availability(&reference));
        let got = scheme
            .decode(&asm.partial_row(), asm.meta().expect("meta"), seed)
            .expect("decodable");
        let want = scheme
            .decode(&reference.partial_row(), reference.meta().expect("meta"), seed)
            .expect("decodable");
        prop_assert_eq!(got.len(), want.len());
        for (a, b) in got.iter().zip(&want) {
            prop_assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "interleaving changed the decode"
            );
        }
    }
}
