//! Property tests across the whole wire layer: for any gradient row, any
//! scheme, and any per-packet trim/drop pattern, the packetize → trim →
//! reassemble → decode path must agree with decoding the equivalent
//! availability view directly — the wire format adds no loss of its own.

use proptest::prelude::*;
use trimgrad_hadamard::prng::Xoshiro256StarStar;
use trimgrad_quant::{scheme_for, SchemeId};
use trimgrad_wire::packet::NetAddrs;
use trimgrad_wire::packetize::{packetize_row, PacketizeConfig};
use trimgrad_wire::reassemble::RowAssembler;

fn cfg(mtu: usize) -> PacketizeConfig {
    PacketizeConfig {
        mtu,
        net: NetAddrs::between_hosts(1, 2),
        msg_id: 3,
        row_id: 1,
        epoch: 2,
    }
}

fn row(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_f32_range(-10.0, 10.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Wire transparency: whatever per-packet fates occur, decoding the
    /// reassembled row equals decoding the directly-constructed view.
    #[test]
    fn wire_path_is_transparent(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..1200,
        seed in any::<u64>(),
        mtu in 300usize..1500,
        fates in proptest::collection::vec(0u8..=4, 1..64)
    ) {
        let scheme_id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(scheme_id);
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let c = cfg(mtu);
        let pr = packetize_row(&enc, &c);
        prop_assert!(!pr.packets.is_empty());

        let n_parts = scheme_id.part_bits().len();
        let mut asm = RowAssembler::new(scheme_id, c.msg_id, c.row_id, len);
        asm.ingest_meta(&pr.meta).expect("meta matches");
        // Depth per coordinate, mirroring the packet fates.
        let mut depths = vec![0usize; enc.n];
        for (i, pkt) in pr.packets.iter().enumerate() {
            let fate = fates[i % fates.len()];
            let fields = pkt.quick_fields().expect("valid");
            let start = fields.coord_start as usize;
            let count = fields.coord_count as usize;
            // fate: 0 = lost, 1..=n_parts = trim to that depth, else intact.
            let depth = if fate == 0 {
                continue; // whole packet lost
            } else {
                (fate as usize).min(n_parts)
            };
            let mut p = pkt.clone();
            if depth < n_parts {
                p.trim_to_depth(depth as u8).expect("trimmable");
            }
            asm.ingest(&p).expect("ingest ok");
            for d in &mut depths[start..start + count] {
                *d = depth;
            }
        }
        let via_wire = scheme
            .decode(&asm.partial_row(), asm.meta().expect("meta"), seed)
            .expect("decodable");
        let direct = scheme
            .decode(&enc.view_with_depths(&depths), &enc.meta, seed)
            .expect("decodable");
        prop_assert_eq!(via_wire.len(), len);
        for (a, b) in via_wire.iter().zip(&direct) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "wire path altered a value");
        }
    }

    /// Telemetry agreement: running the packetize → trim → reassemble path
    /// while tallying counters into a registry must reproduce the
    /// assembler's own bookkeeping exactly — delivered + lost == made,
    /// trimmed/parts-lost counts match the applied fates, and the coords
    /// counter equals what the assembler reports as received.
    #[test]
    fn roundtrip_counters_match_telemetry(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..1200,
        seed in any::<u64>(),
        mtu in 300usize..1500,
        fates in proptest::collection::vec(0u8..=4, 1..64)
    ) {
        let scheme_id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(scheme_id);
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let c = cfg(mtu);
        let pr = packetize_row(&enc, &c);
        let n_parts = scheme_id.part_bits().len();

        let reg = trimgrad_telemetry::Registry::new();
        let made = reg.counter("wire.packets_made");
        let delivered = reg.counter("wire.packets_delivered");
        let lost = reg.counter("wire.packets_lost");
        let trimmed = reg.counter("wire.packets_trimmed");
        let parts_lost = reg.counter("wire.parts_lost");
        let coords = reg.counter("wire.coords_delivered");

        let mut asm = RowAssembler::new(scheme_id, c.msg_id, c.row_id, len);
        asm.ingest_meta(&pr.meta).expect("meta matches");
        let mut expect_delivered = 0u64;
        let mut expect_trimmed = 0u64;
        let mut expect_parts_lost = 0u64;
        for (i, pkt) in pr.packets.iter().enumerate() {
            made.inc();
            let fate = fates[i % fates.len()];
            if fate == 0 {
                lost.inc();
                continue;
            }
            let depth = (fate as usize).min(n_parts);
            let mut p = pkt.clone();
            if depth < n_parts {
                p.trim_to_depth(depth as u8).expect("trimmable");
                trimmed.inc();
                parts_lost.add((n_parts - depth) as u64);
                expect_trimmed += 1;
                expect_parts_lost += (n_parts - depth) as u64;
            }
            let fields = p.quick_fields().expect("valid");
            asm.ingest(&p).expect("ingest ok");
            delivered.inc();
            coords.add(u64::from(fields.coord_count));
            expect_delivered += 1;
        }

        let snap = reg.snapshot();
        prop_assert_eq!(snap.counter("wire.packets_made"), pr.packets.len() as u64);
        prop_assert_eq!(
            snap.counter("wire.packets_delivered") + snap.counter("wire.packets_lost"),
            snap.counter("wire.packets_made"),
            "wire conservation violated"
        );
        prop_assert_eq!(snap.counter("wire.packets_delivered"), expect_delivered);
        prop_assert_eq!(snap.counter("wire.packets_trimmed"), expect_trimmed);
        prop_assert_eq!(snap.counter("wire.parts_lost"), expect_parts_lost);
        // Head coords the assembler holds == head coords the counters say
        // arrived (re-delivery of the same range cannot double-count in the
        // assembler, but each packet covers a disjoint range here).
        prop_assert_eq!(
            snap.counter("wire.coords_delivered") as usize,
            asm.coords_received(),
            "telemetry coords disagree with assembler bookkeeping"
        );
        // Snapshots are pure reads: a second one is identical.
        prop_assert_eq!(snap, reg.snapshot());
    }

    /// Every produced frame is structurally valid and within the MTU
    /// (plus Ethernet framing), before and after any legal trim.
    #[test]
    fn frames_respect_mtu_and_parse(
        scheme_idx in 0usize..SchemeId::ALL.len(),
        len in 1usize..2000,
        seed in any::<u64>(),
        mtu in 200usize..1500
    ) {
        let scheme_id = SchemeId::ALL[scheme_idx];
        let scheme = scheme_for(scheme_id);
        let data = row(len, seed);
        let enc = scheme.encode(&data, seed);
        let pr = packetize_row(&enc, &cfg(mtu));
        let n_parts = scheme_id.part_bits().len() as u8;
        for pkt in &pr.packets {
            prop_assert!(pkt.wire_len() <= mtu + 14, "frame exceeds MTU");
            pkt.parse().expect("valid untrimmed frame");
            for depth in 1..n_parts {
                let mut p = pkt.clone();
                p.trim_to_depth(depth).expect("trim ok");
                let parsed = p.parse().expect("valid trimmed frame");
                prop_assert_eq!(parsed.fields.trim_depth, depth);
                prop_assert!(p.wire_len() <= pkt.wire_len());
            }
        }
    }
}
