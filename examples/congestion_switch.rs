//! Inside the fabric: incast congestion at a trimming switch vs a drop-tail
//! switch.
//!
//! Eight senders blast one receiver through a single shallow-buffer switch.
//! With tail-drop, packets die and flows finish only as fast as recovery
//! allows; with trimming, every packet survives (many as 64-byte headers on
//! the priority queue) and the incast resolves with zero loss — the NDP
//! property the paper builds on.
//!
//! Run: `cargo run --release --example congestion_switch`

use trimgrad::netsim::crosstraffic::install_incast;
use trimgrad::netsim::sim::Simulator;
use trimgrad::netsim::switch::QueuePolicy;
use trimgrad::netsim::time::{gbps, SimTime};
use trimgrad::netsim::topology::Topology;
use trimgrad::netsim::NodeId;

const SENDERS: usize = 8;
const BYTES_PER_SENDER: u64 = 300_000;

fn run(policy: QueuePolicy, label: &str) {
    let mut topo = Topology::new();
    let receiver = topo.add_host();
    let switch = topo.add_switch(policy);
    topo.link(receiver, switch, gbps(10.0), SimTime::from_micros(1));
    let senders: Vec<NodeId> = (0..SENDERS)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let mut sim = Simulator::new(topo);
    let flows = install_incast(&mut sim, &senders, receiver, BYTES_PER_SENDER, 1500, 100);
    sim.run_until(SimTime::from_secs(1));

    let st = sim.stats();
    println!("== {label} ==");
    println!("  sent:      {:6}", st.sent_packets());
    println!(
        "  delivered: {:6}  (of which trimmed: {})",
        st.delivered_packets(),
        st.delivered_trimmed_packets()
    );
    println!("  dropped:   {:6}", st.dropped_total());
    println!("  max queue: {:6} B", st.max_queue_bytes());
    let completed = flows
        .iter()
        .filter(|f| st.flow(**f).and_then(|r| r.fct()).is_some())
        .count();
    println!("  flows completed without retransmission: {completed}/{SENDERS}");
    if let Some(sum) = st.fct_summary() {
        println!(
            "  FCT p50/p90/max: {} / {} / {}  (the max is the straggler)",
            sum.p50, sum.p90, sum.max
        );
    }
    println!();
}

fn main() {
    println!("{SENDERS}-to-1 incast, {BYTES_PER_SENDER} B per sender, 150 KB switch buffer\n");
    run(
        QueuePolicy::droptail_default(),
        "tail-drop switch (baseline fabric)",
    );
    run(
        QueuePolicy::trim_default(),
        "trimming switch (NDP/UEC-style)",
    );
    println!("With trimming, every sent packet is accounted for at the receiver —");
    println!("the payload of trimmed packets is gone, but for trimmable gradients");
    println!("the surviving heads ARE the compressed gradient.");
}
