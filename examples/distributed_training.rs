//! Distributed data-parallel training with trimmable gradients.
//!
//! Four workers train a classifier on a synthetic 10-class task; the
//! gradient exchange goes through the paper's encodings while the simulated
//! fabric trims 30% of all gradient packets. Compare the learning curves of
//! the lossless baseline, the biased sign-magnitude scheme, and RHT.
//!
//! Run: `cargo run --release --example distributed_training`

use trimgrad::collective::hooks::{AggregateHook, BaselineHook, TrimmableHook};
use trimgrad::mltrain::data::gaussian_mixture;
use trimgrad::mltrain::optim::StepLr;
use trimgrad::mltrain::parallel::{DataParallelTrainer, ParallelConfig};
use trimgrad::Scheme;

const TRIM_RATE: f64 = 0.50;
const WORKERS: usize = 4;
const EPOCHS: u32 = 50;

fn run(hook: Box<dyn AggregateHook>) -> (String, Vec<f64>) {
    let name = hook.name();
    // Spread 1.4 + lr 0.1: the calibrated regime where gradient-compression
    // error visibly costs accuracy (see trimgrad-bench).
    let (train, test) = gaussian_mixture(10, 32, 120, 2.0, 1.4, 7).split(0.8, 7);
    let cfg = ParallelConfig {
        workers: WORKERS,
        batch_size: 32,
        schedule: StepLr {
            initial_lr: 0.1,
            step_size: 30,
            gamma: 0.5,
        },
        momentum: 0.9,
        rounds_per_epoch: 20,
        seed: 7,
    };
    let mut t = DataParallelTrainer::new(&[32, 64, 64, 10], train, test, hook, cfg);
    let mut curve = Vec::new();
    for _ in 0..EPOCHS {
        let s = t.run_epoch();
        curve.push(s.top1);
    }
    (name, curve)
}

fn main() {
    println!("4 workers, 50% of gradient packets trimmed, {EPOCHS} epochs\n");
    let runs = vec![
        run(Box::new(BaselineHook::new(WORKERS))),
        run(Box::new(TrimmableHook::new(
            Scheme::SignMagnitude,
            WORKERS,
            TRIM_RATE,
            0.0,
            1 << 12,
            99,
        ))),
        run(Box::new(TrimmableHook::new(
            Scheme::SubtractiveDither,
            WORKERS,
            TRIM_RATE,
            0.0,
            1 << 12,
            99,
        ))),
        run(Box::new(TrimmableHook::new(
            Scheme::RhtOneBit,
            WORKERS,
            TRIM_RATE,
            0.0,
            1 << 12,
            99,
        ))),
    ];

    print!("{:>6}", "epoch");
    for (name, _) in &runs {
        print!("{name:>10}");
    }
    println!();
    for e in (0..EPOCHS as usize).step_by(5) {
        print!("{e:>6}");
        for (_, curve) in &runs {
            print!("{:>10.3}", curve[e]);
        }
        println!();
    }
    println!("\nfinal:");
    for (name, curve) in &runs {
        println!(
            "  {name:>9}: top-1 {:.3}",
            curve.last().expect("epochs > 0")
        );
    }
}
