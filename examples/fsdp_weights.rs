//! Trimmable FSDP weight gathering (§5.5).
//!
//! Trains a model, shards its weights across four owners, then measures
//! inference accuracy when the gather crosses a trimming fabric — the
//! paper's conjecture that networks tolerate small weight imperfections,
//! quantified per encoding.
//!
//! Run: `cargo run --release --example fsdp_weights`

use trimgrad::collective::channel::TrimmingChannel;
use trimgrad::collective::chunk::MessageCodec;
use trimgrad::collective::hooks::BaselineHook;
use trimgrad::collective::TrimInjector;
use trimgrad::mltrain::data::gaussian_mixture;
use trimgrad::mltrain::fsdp::ShardedParams;
use trimgrad::mltrain::metrics::top1_accuracy;
use trimgrad::mltrain::parallel::{DataParallelTrainer, ParallelConfig};
use trimgrad::mltrain::Mlp;
use trimgrad::Scheme;

fn main() {
    // Train the reference model (lossless aggregation).
    let (train, test) = gaussian_mixture(10, 32, 120, 2.0, 1.4, 7).split(0.8, 7);
    let dims = [32usize, 64, 64, 10];
    let mut trainer = DataParallelTrainer::new(
        &dims,
        train,
        test.clone(),
        Box::new(BaselineHook::new(4)),
        ParallelConfig::default(),
    );
    for _ in 0..50 {
        trainer.run_epoch();
    }
    let (clean, _) = trainer.evaluate();
    println!("clean model top-1: {clean:.4}\n");
    println!("accuracy after gathering sharded weights through a trimming fabric:");
    println!("{:>8} {:>10} {:>10}", "trim", "sd", "rht");

    let sharded = ShardedParams::split(&trainer.params_of_worker0(), 4);
    for trim in [0.0, 0.1, 0.25, 0.5, 1.0] {
        let acc = |scheme: Scheme| {
            let codec = MessageCodec::with_row_len(scheme, 5, 1 << 10);
            let mut chan = TrimmingChannel::new(codec, TrimInjector::new(trim, 42));
            let gathered = sharded.gather(0, &mut chan, 0, 0);
            let mut m = Mlp::new(&dims, 0);
            m.set_params_flat(&gathered);
            top1_accuracy(&m.forward(&test.x), &test.y)
        };
        println!(
            "{:>7.0}% {:>10.4} {:>10.4}",
            trim * 100.0,
            acc(Scheme::SubtractiveDither),
            acc(Scheme::RhtOneBit)
        );
    }
    println!("\nFor weights there is no round-to-round averaging, so the unbiased-but-");
    println!("noisy SD decode hurts more than RHT's low per-instance error — the RHT");
    println!("model stays usable even with every gather packet trimmed to 1 bit.");
}
