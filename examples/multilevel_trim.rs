//! Multi-level trimming + congestion-control coupling (§5.1 and §5.3).
//!
//! The three-part `MultiLevelRht` encoding (1-bit sign / 8-bit exponent /
//! 23-bit mantissa) lets switches pick a trim depth per congestion level,
//! and lets the *sender* pre-truncate parts based on feedback — the
//! [`AotController`] always slightly over-sends and lets switches do the
//! just-in-time rest.
//!
//! Run: `cargo run --release --example multilevel_trim`

use trimgrad::cc::{AotController, RoundFeedback};
use trimgrad::quant::error::nmse;
use trimgrad::quant::multilevel::MultiLevelRht;
use trimgrad::quant::TrimmableScheme;
use trimgrad::Scheme;

fn main() {
    let scheme = MultiLevelRht;
    let gradient: Vec<f32> = (0..4096)
        .map(|i| ((i as f32) * 0.0137).sin() * 0.2)
        .collect();
    let enc = scheme.encode(&gradient, 7);

    // --- Part 1: what each switch trim level costs in accuracy. ---
    println!(
        "switch trim levels of the {} encoding:",
        Scheme::MultiLevelRht.name()
    );
    let part_bits = scheme.part_bits();
    for depth in (1..=part_bits.len()).rev() {
        let kept_bits: u32 = part_bits[..depth].iter().sum();
        let dec = scheme
            .decode(&enc.trimmed_view(depth), &enc.meta, 7)
            .expect("valid view");
        println!(
            "  depth {depth} ({kept_bits:>2} bits/coord, {:>5.1}% of payload): nmse {:.6}",
            kept_bits as f64 / 32.0 * 100.0,
            nmse(&dec, &gradient)
        );
    }

    // --- Part 2: the ahead-of-time controller reacting to congestion. ---
    println!("\nsender-side AOT precision under a congestion episode:");
    let mut ctl = AotController::new(part_bits.len());
    let episode = [
        0.0, 0.0, 0.5, 0.6, 0.7, 0.6, 0.8, 0.5, 0.6, 0.7, 0.0, 0.0, 0.0,
    ];
    for (round, &trim_frac) in episode.iter().enumerate() {
        ctl.on_feedback(&RoundFeedback {
            trim_fraction: trim_frac,
            ecn_fraction: 0.0,
        });
        println!(
            "  round {round:>2}: observed trim {:>3.0}%  -> send {} parts ({} bits/coord)",
            trim_frac * 100.0,
            ctl.send_depth(),
            ctl.bits_per_coord(part_bits)
        );
    }
    println!("\nNote the asymmetry: precision decays only after sustained congestion");
    println!("but recovers immediately — \"slightly under-compress and over-send\".");
}
