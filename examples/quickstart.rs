//! Quickstart: encode a gradient into trimmable packets, trim some of them
//! the way a congested switch would, and decode what survived.
//!
//! Run: `cargo run --release --example quickstart`

use trimgrad::pipeline::{PipelineConfig, TrimmablePipeline};
use trimgrad::quant::error::nmse;
use trimgrad::Scheme;

fn main() {
    // A synthetic "gradient": 10k coordinates with realistic heavy tails.
    let gradient: Vec<f32> = (0..10_000)
        .map(|i| {
            let x = ((i * 37 + 11) % 1000) as f32 / 500.0 - 1.0;
            x * x * x * 0.1
        })
        .collect();

    for scheme in [
        Scheme::SignMagnitude,
        Scheme::Stochastic,
        Scheme::SubtractiveDither,
        Scheme::RhtOneBit,
    ] {
        let pipe = TrimmablePipeline::new(
            PipelineConfig::builder()
                .scheme(scheme)
                .row_len(1 << 12)
                .build(),
        );

        // Sender: packetize (epoch 0, message 0, host 1 → host 2).
        let tx = pipe.encode(&gradient, 0, 0, 1, 2);
        let full_bytes = tx.wire_bytes();

        // Network: a congested switch trims 50% of the data packets down to
        // their 1-bit heads. This truncates real frame bytes and patches the
        // IP/UDP lengths + checksums exactly like a trimming ASIC.
        let mut packets = tx.packets;
        let mut trimmed_bytes = 0usize;
        for (i, p) in packets.iter_mut().enumerate() {
            if i % 2 == 0 {
                p.trim_to_depth(1).expect("data packets are trimmable");
            }
            trimmed_bytes += p.wire_len();
        }

        // Receiver: reassemble + decode whatever arrived.
        let decoded = pipe
            .decode(&packets, &tx.metas, 0, 0)
            .expect("valid packets");

        println!(
            "{:8}  wire: {:7} B -> {:7} B ({:4.1}% saved)   nmse vs original: {:.4}",
            scheme.name(),
            full_bytes,
            trimmed_bytes,
            (1.0 - trimmed_bytes as f64 / full_bytes as f64) * 100.0,
            nmse(&decoded, &gradient),
        );
    }
    println!("\nNote the RHT encoding's lower error at the same trim rate — that is");
    println!("the paper's core result, and why it alone survives 50% trimming.");
}
