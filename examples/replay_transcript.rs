//! Reproducibility (§5.4): record which packets a congested run trimmed,
//! serialize the transcript, and replay it later for a bit-identical decode.
//!
//! Run: `cargo run --release --example replay_transcript`

use trimgrad::collective::TrimInjector;
use trimgrad::quant::scheme_for;
use trimgrad::transcript::{RecordingInjector, TrimTranscript};
use trimgrad::Scheme;

fn main() {
    let scheme = scheme_for(Scheme::RhtOneBit);
    let gradient: Vec<f32> = (0..8192)
        .map(|i| ((i as f32) * 0.013).sin() * ((i % 97) as f32 / 97.0))
        .collect();
    let (epoch, msg_id, row_id, seed) = (3, 14, 0, 0xFACE);
    let enc = scheme.encode(&gradient, seed);

    // --- The original congested run: random trimming, recorded. ---
    let mut recorder = RecordingInjector::new(TrimInjector::new(0.35, 2024).with_drop_prob(0.05));
    let depths = recorder.draw_depths(&enc, epoch, msg_id, row_id);
    let original = scheme
        .decode(&enc.view_with_depths(&depths), &enc.meta, seed)
        .expect("valid view");
    let transcript = recorder.into_transcript();
    println!(
        "original run: {} of {} packet-chunks trimmed or lost",
        transcript.len(),
        depths.chunks(360).count()
    );

    // --- Archive the transcript (any byte store works). ---
    let archived = transcript.to_bytes();
    println!("transcript serialized: {} bytes", archived.len());

    // --- Much later: replay. The transcript IS the network now. ---
    let restored = TrimTranscript::from_bytes(&archived).expect("well-formed transcript");
    let replay_depths = restored.replay_depths(&enc, epoch, msg_id, row_id, 1500 - 20 - 8 - 28);
    let replayed = scheme
        .decode(&enc.view_with_depths(&replay_depths), &enc.meta, seed)
        .expect("valid view");

    assert_eq!(replayed, original);
    println!("replayed decode is BIT-IDENTICAL to the original run ✓");
    println!(
        "(first coords: original {:?} == replay {:?})",
        &original[..4],
        &replayed[..4]
    );
}
