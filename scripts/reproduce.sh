#!/usr/bin/env bash
# Regenerates every paper figure/table plus the extension ablations, saving
# outputs under results/. Figures 3-4 train ~150 model configurations and
# dominate the runtime (~45 min total on a laptop-class CPU).
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p results
# The figure binaries also dump their telemetry snapshots as
# results/<name>.snapshot.json (see EXPERIMENTS.md); TRIMGRAD_SNAPSHOT_DIR
# overrides the destination.
export TRIMGRAD_SNAPSHOT_DIR=results
cargo build --release -p trimgrad-bench --bins

run() {
    local name="$1"
    echo "=== $name ==="
    "./target/release/$name" | tee "results/$name.txt"
}

run layout_table       # §2 in-text packet-layout numbers (instant)
run trace_smoke        # flight-recorder end-to-end (writes results/trace_smoke.{bin,jsonl})
run baseline_drops     # §4.4 baseline drop tolerance, measured (seconds)
run queue_closedloop   # §5.1 closed-loop queueing study (seconds)
run fig5_breakdown     # Fig 5 breakdown, encode measured (~1 min)
run fsdp_gather        # §5.5 FSDP weight-gather ablation (~1 min)
run lowrank_ablation   # §5.2 low-rank prefix-decodable compression (instant)
run fig3_tta           # Fig 3 TTA curves (~10 min)
run fig4_ttba          # Fig 4 time-to-baseline-accuracy (~35 min)

# Fleet SLO scenario: N tenants with per-tenant metric scopes on a k=8
# fat-tree, churn, and cross-traffic. Writes results/fleet.series.json,
# results/fleet.snapshot.json, results/fleet.trace.{bin,jsonl}, and the
# dependency-free dashboard at results/dashboard.html (open in a browser;
# EXPERIMENTS.md § "Reading the fleet dashboard" is the walkthrough).
run fleet              # fleet SLO scenario + dashboard (seconds)

# Micro-benchmark reports (best + mean ns/iter, throughput, pool width).
# TRIMGRAD_THREADS pins the worker pool; the table in EXPERIMENTS.md §
# "Parallel speedup" is built from these files.
echo "=== microbenches ==="
# Absolute paths: cargo runs bench binaries with cwd = crates/bench.
cargo bench -p trimgrad-bench --bench encode_decode -- --json "$PWD/results/BENCH_encode.json" --assert-encode-pool-not-slower 10 --assert-encode-vectorized-not-slower 0
cargo bench -p trimgrad-bench --bench wire          -- --json "$PWD/results/BENCH_wire.json"
cargo bench -p trimgrad-bench --bench netsim        -- --json "$PWD/results/BENCH_netsim.json" --assert-calendar-not-slower 10 --assert-dense-ports-not-slower 10 --assert-sampling-overhead 2

# Human-readable digest of the flight-recorder run above; `trimgrad-trace
# query results/trace_smoke.bin --follow FLOW:SEQ` replays any packet in it.
echo "=== trace query ==="
cargo run --release -p trimgrad-trace -- query results/trace_smoke.bin --summary \
    | tee results/trace_smoke.summary.txt

echo "All experiment outputs saved under results/ (figure binaries also"
echo "write machine-readable telemetry to results/*.snapshot.json)."
