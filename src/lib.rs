//! Umbrella crate for the `trimgrad` workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). It re-exports every workspace
//! crate under one namespace for convenience; library users should normally
//! depend on [`trimgrad`] (the core crate) directly.

pub use trimgrad;
pub use trimgrad_collective as collective;
pub use trimgrad_hadamard as hadamard;
pub use trimgrad_mltrain as mltrain;
pub use trimgrad_netsim as netsim;
pub use trimgrad_quant as quant;
pub use trimgrad_trace as trace;
pub use trimgrad_wire as wire;
