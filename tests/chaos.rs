//! Chaos suite: deterministic fault matrices swept across both transports
//! and the full packetize → trim → reassemble → decode pipeline.
//!
//! Every fault (whole-packet loss bursts, reordering, duplication, payload
//! corruption, header/frame truncation, stale replay) is drawn from the
//! seeded [`FaultPlan`] RNG, so each scenario is byte-reproducible: a
//! failing run is replayed exactly by re-running with the seed printed in
//! the assertion message (or by exporting `CHAOS_SEED=<seed>`).
//!
//! Invariants checked on every seed:
//! * nothing panics;
//! * no wrong-row, wrong-epoch, or truncated payload is ever accepted;
//! * receiver availability only ever grows;
//! * packet counters conserve (`sent + injected == delivered + dropped`);
//! * the run is deterministic — same seed, same telemetry snapshot.

use trimgrad::collective::ring_netsim::{
    run_ring_allreduce, run_ring_allreduce_faulted, RingNetConfig,
};
use trimgrad::hadamard::prng::Xoshiro256StarStar;
use trimgrad::netsim::fault::{FaultPlan, FaultPolicy};
use trimgrad::netsim::host::{App, HostApi};
use trimgrad::netsim::packet::{Packet, PacketBody, PacketSpec};
use trimgrad::netsim::sim::Simulator;
use trimgrad::netsim::switch::QueuePolicy;
use trimgrad::netsim::time::{gbps, SimTime};
use trimgrad::netsim::topology::Topology;
use trimgrad::netsim::transport::{
    ReliableReceiverApp, ReliableSenderApp, TransportConfig, TrimmingReceiverApp, TrimmingSenderApp,
};
use trimgrad::netsim::{FlowId, NodeId};
use trimgrad::quant::scheme::PartView;
use trimgrad::quant::{scheme_for, SchemeId};
use trimgrad::wire::meta::RowMetaPacket;
use trimgrad::wire::packet::{GradPacket, NetAddrs};
use trimgrad::wire::packetize::{packetize_row, PacketizeConfig};
use trimgrad::wire::reassemble::RowAssembler;

/// The fixed seed matrix CI sweeps; `CHAOS_SEED` narrows a run to one seed
/// (decimal or `0x`-prefixed hex) to replay a recorded failure.
fn chaos_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let s = s.trim();
        let parsed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        return vec![parsed.expect("CHAOS_SEED must be a u64")];
    }
    vec![0x00C0_FFEE, 0xDEC0_DE01, 0x0072_13AB, 0xFA57_F00D]
}

/// Every fault class at once, at rates a transport should survive.
fn full_matrix_policy() -> FaultPolicy {
    FaultPolicy::none()
        .with_loss_burst(0.02, 1, 3)
        .with_reorder(0.08, SimTime::from_micros(40))
        .with_duplicate(0.05)
        .with_corrupt(0.05)
        .with_truncate(0.05)
        .with_replay(0.03)
}

/// One trimming-transport flow across a faulted link. Returns the sim for
/// post-run inspection.
fn trimming_run(seed: u64) -> (Simulator, NodeId) {
    let mut topo = Topology::new();
    let a = topo.add_host();
    let b = topo.add_host();
    topo.link(a, b, gbps(10.0), SimTime::from_micros(5));
    let mut sim = Simulator::with_seed(topo, seed);
    sim.install_fault_plan(FaultPlan::new(seed).with_default(full_matrix_policy()));
    sim.install_app(
        a,
        Box::new(TrimmingSenderApp::new(
            b,
            750_000,
            1,
            TransportConfig::default(),
        )),
    );
    sim.install_app(
        b,
        Box::new(TrimmingReceiverApp::new(1, TransportConfig::default())),
    );
    sim.run_until(SimTime::from_secs(30));
    (sim, a)
}

#[test]
fn trimming_transport_survives_full_fault_matrix() {
    for seed in chaos_seeds() {
        let (sim, sender_node) = trimming_run(seed);
        let sender: &TrimmingSenderApp = sim.app_ref(sender_node).expect("sender installed");
        assert!(
            sender.is_done() || sender.is_failed(),
            "seed {seed:#x}: sender neither done nor terminally failed"
        );
        assert!(
            sim.conservation_holds(),
            "seed {seed:#x}: packet conservation violated"
        );
        // The matrix must actually have fired, and the per-fault tallies
        // must surface unchanged in the telemetry snapshot.
        let fs = sim.fault_stats();
        assert!(fs.total() > 0, "seed {seed:#x}: no fault ever fired");
        assert!(fs.dropped > 0, "seed {seed:#x}: loss bursts never fired");
        let snap = sim.telemetry_snapshot();
        assert_eq!(snap.counter("netsim.fault.dropped"), fs.dropped);
        assert_eq!(snap.counter("netsim.fault.duplicated"), fs.duplicated);
        assert_eq!(snap.counter("netsim.fault.reordered"), fs.reordered);
        assert_eq!(snap.counter("netsim.fault.corrupted"), fs.corrupted);
        assert_eq!(snap.counter("netsim.fault.truncated"), fs.truncated);
        assert_eq!(snap.counter("netsim.fault.replayed"), fs.replayed);
        assert_eq!(snap.counter("netsim.dropped.fault"), fs.dropped);
        assert_eq!(snap.counter("netsim.injected"), fs.injected());
    }
}

#[test]
fn reliable_transport_survives_full_fault_matrix() {
    for seed in chaos_seeds() {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        topo.link(a, b, gbps(10.0), SimTime::from_micros(5));
        let mut sim = Simulator::with_seed(topo, seed);
        // Slightly gentler loss than the trimming matrix: go-back-N loses a
        // whole window per event, and the point here is invariants, not FCT.
        let policy = FaultPolicy::none()
            .with_loss_burst(0.01, 1, 2)
            .with_reorder(0.05, SimTime::from_micros(40))
            .with_duplicate(0.03)
            .with_truncate(0.03)
            .with_replay(0.02);
        sim.install_fault_plan(FaultPlan::new(seed).with_default(policy));
        let total_packets = 1000u64;
        sim.install_app(
            a,
            Box::new(ReliableSenderApp::new(
                b,
                total_packets * 1500,
                1,
                TransportConfig::default(),
            )),
        );
        sim.install_app(b, Box::new(ReliableReceiverApp::new()));
        sim.run_until(SimTime::from_secs(30));
        let st = sim.stats();
        assert!(
            st.flow(FlowId(1)).and_then(|f| f.fct()).is_some(),
            "seed {seed:#x}: reliable flow never completed"
        );
        let recv: &ReliableReceiverApp = sim.app_ref(NodeId(1)).expect("receiver installed");
        // Exactly-once in-order acceptance: every fault-truncated packet was
        // NACKed and retransmitted in full, duplicates and stale replays
        // were re-ACKed without being re-accepted.
        assert_eq!(
            recv.received, total_packets,
            "seed {seed:#x}: wrong number of packets accepted"
        );
        assert!(
            recv.nacked_trimmed > 0,
            "seed {seed:#x}: truncation faults never reached the receiver"
        );
        assert!(
            sim.conservation_holds(),
            "seed {seed:#x}: packet conservation violated"
        );
    }
}

#[test]
fn ring_pipeline_with_nonlossy_faults_matches_clean_run() {
    let w = 3;
    let len = 2000;
    let blobs = |seed: u64| -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256StarStar::new(seed);
        (0..w)
            .map(|_| (0..len).map(|_| rng.next_f32_range(-1.0, 1.0)).collect())
            .collect()
    };
    let topo = || {
        let mut t = Topology::new();
        let s = t.add_switch(QueuePolicy::trim_default());
        let hosts: Vec<NodeId> = (0..w)
            .map(|_| {
                let h = t.add_host();
                t.link(h, s, gbps(100.0), SimTime::from_micros(1));
                h
            })
            .collect();
        (t, hosts)
    };
    let ring_cfg = |hosts: Vec<NodeId>| RingNetConfig {
        scheme: SchemeId::RhtOneBit,
        row_len: 1024,
        base_seed: 42,
        epoch: 1,
        mtu: 1500,
        hosts,
        blob_len: len,
        flow_base: 0,
    };

    let (t, hosts) = topo();
    let mut clean_sim = Simulator::new(t);
    let clean = run_ring_allreduce(
        &mut clean_sim,
        &ring_cfg(hosts),
        blobs(9),
        SimTime::from_secs(5),
    )
    .0;

    for seed in chaos_seeds() {
        let plan = FaultPlan::new(seed).with_default(
            FaultPolicy::none()
                .with_duplicate(0.25)
                .with_reorder(0.4, SimTime::from_micros(25))
                .with_replay(0.15),
        );
        let (t, hosts) = topo();
        let mut sim = Simulator::new(t);
        let faulted = run_ring_allreduce_faulted(
            &mut sim,
            &ring_cfg(hosts),
            blobs(9),
            SimTime::from_secs(5),
            plan,
        )
        .0;
        assert_eq!(
            clean, faulted,
            "seed {seed:#x}: non-lossy faults changed the all-reduce result"
        );
        assert!(sim.conservation_holds(), "seed {seed:#x}");
        assert!(
            sim.fault_stats().injected() > 0,
            "seed {seed:#x}: no duplicate or replay ever fired"
        );
    }
}

/// Sends one packetized row (meta first) plus hostile wrong-row and
/// stale-epoch packets over a corrupting link.
struct RowSenderApp {
    dst: NodeId,
    meta: Option<RowMetaPacket>,
    frames: Vec<GradPacket>,
}

impl App for RowSenderApp {
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
    fn on_start(&mut self, api: &mut HostApi) {
        let meta = self.meta.take().expect("meta set");
        api.send(PacketSpec::grad_meta(self.dst, FlowId(1), 0, meta));
        for (i, frame) in self.frames.drain(..).enumerate() {
            api.send(PacketSpec::grad_data(
                self.dst,
                FlowId(1),
                1 + i as u64,
                frame,
            ));
        }
    }
    fn on_packet(&mut self, _pkt: Packet, _api: &mut HostApi) {}
}

/// Reassembles one row, checking on every arrival that availability never
/// shrinks and tallying what the receive path refused.
struct RowCollectorApp {
    asm: RowAssembler,
    monotone: bool,
    accepted: u64,
    rejected: u64,
}

fn availability(asm: &RowAssembler) -> usize {
    asm.partial_row()
        .parts
        .iter()
        .map(|p| match p {
            PartView::Full(_) => asm.n(),
            PartView::Absent => 0,
            PartView::Masked { present, .. } => present.count_present(),
        })
        .sum()
}

impl App for RowCollectorApp {
    fn as_any(&self) -> &dyn core::any::Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn core::any::Any {
        self
    }
    fn on_packet(&mut self, pkt: Packet, _api: &mut HostApi) {
        match &pkt.body {
            PacketBody::GradData(frame) => {
                let before = availability(&self.asm);
                match self.asm.ingest(frame) {
                    Ok(()) => self.accepted += 1,
                    Err(_) => self.rejected += 1,
                }
                let after = availability(&self.asm);
                if after < before {
                    self.monotone = false;
                }
            }
            PacketBody::GradMeta(meta) => {
                self.asm.ingest_meta(meta).expect("legit meta");
            }
            _ => {}
        }
    }
}

#[test]
fn pipeline_chaos_rejects_mangled_and_foreign_packets() {
    for seed in chaos_seeds() {
        let scheme_id = SchemeId::RhtOneBit;
        let scheme = scheme_for(scheme_id);
        let len = 3000;
        let data: Vec<f32> = {
            let mut rng = Xoshiro256StarStar::new(seed);
            (0..len).map(|_| rng.next_f32_range(-1.0, 1.0)).collect()
        };
        let enc = scheme.encode(&data, 7);
        let cfg = PacketizeConfig {
            mtu: 1500,
            net: NetAddrs::between_hosts(0, 1),
            msg_id: 5,
            row_id: 1,
            epoch: 2,
        };
        let pr = packetize_row(&enc, &cfg);
        let mut frames = pr.packets.clone();
        // Hostile traffic riding the same flow: another row and a stale epoch.
        let foreign = packetize_row(&enc, &PacketizeConfig { row_id: 999, ..cfg });
        let stale = packetize_row(&enc, &PacketizeConfig { epoch: 7, ..cfg });
        frames.push(foreign.packets[0].clone());
        frames.push(stale.packets[0].clone());
        let legit = pr.packets.len() as u64;

        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        topo.link(a, b, gbps(10.0), SimTime::from_micros(5));
        let mut sim = Simulator::with_seed(topo, seed);
        // Corruption and truncation only — the row metadata must survive, and
        // GradMeta is immune to both (reliable packets are never mangled),
        // so availability is attacked while decodability is preserved.
        sim.install_fault_plan(FaultPlan::new(seed).with_channel(
            a,
            b,
            FaultPolicy::none().with_corrupt(0.2).with_truncate(0.2),
        ));
        sim.install_app(
            a,
            Box::new(RowSenderApp {
                dst: b,
                meta: Some(pr.meta),
                frames,
            }),
        );
        sim.install_app(
            b,
            Box::new(RowCollectorApp {
                asm: RowAssembler::new(scheme_id, cfg.msg_id, cfg.row_id, len),
                monotone: true,
                accepted: 0,
                rejected: 0,
            }),
        );
        sim.run_until(SimTime::from_secs(1));

        let col: &RowCollectorApp = sim.app_ref(b).expect("collector installed");
        assert!(col.monotone, "seed {seed:#x}: availability shrank");
        assert_eq!(
            col.accepted + col.rejected,
            legit + 2,
            "seed {seed:#x}: arrivals unaccounted for"
        );
        // The two foreign packets must be refused; mangled legit packets may
        // be refused too, but never accepted with wrong content.
        assert!(
            col.rejected >= 2,
            "seed {seed:#x}: foreign packets were accepted"
        );
        assert_eq!(col.asm.epoch(), Some(cfg.epoch), "seed {seed:#x}");
        let fs = sim.fault_stats();
        assert!(
            fs.corrupted + fs.truncated > 0,
            "seed {seed:#x}: the mangling matrix never fired"
        );
        // Whatever survived decodes finitely, and every surviving coordinate
        // decodes identically to a clean assembler fed the same accepted set
        // (spot-checked via bit-identical decode of the collector's view).
        let dec = scheme
            .decode(&col.asm.partial_row(), col.asm.meta().expect("meta"), 7)
            .expect("partial row decodes");
        assert_eq!(dec.len(), len);
        assert!(
            dec.iter().all(|d| d.is_finite()),
            "seed {seed:#x}: non-finite decode"
        );
    }
}

/// The faulted ring, run twice with identical seeds, must produce
/// byte-identical blobs and telemetry — *including* when the process runs
/// with a multi-threaded worker pool. CI executes this binary under both
/// `TRIMGRAD_THREADS=1` and `TRIMGRAD_THREADS=4`; the encode/packetize/
/// decode fan-outs inside the ring workers split work by row index and merge
/// in row order, so the pool width must never leak into the transcript.
#[test]
fn faulted_ring_is_bit_deterministic_across_runs() {
    let w = 3;
    let len = 2000;
    let run = |seed: u64| {
        let mut t = Topology::new();
        let s = t.add_switch(QueuePolicy::trim_default());
        let hosts: Vec<NodeId> = (0..w)
            .map(|_| {
                let h = t.add_host();
                t.link(h, s, gbps(100.0), SimTime::from_micros(1));
                h
            })
            .collect();
        let cfg = RingNetConfig {
            scheme: SchemeId::RhtOneBit,
            row_len: 512,
            base_seed: 42,
            epoch: 1,
            mtu: 1500,
            hosts,
            blob_len: len,
            flow_base: 0,
        };
        let blobs: Vec<Vec<f32>> = {
            let mut rng = Xoshiro256StarStar::new(seed);
            (0..w)
                .map(|_| (0..len).map(|_| rng.next_f32_range(-1.0, 1.0)).collect())
                .collect()
        };
        let plan = FaultPlan::new(seed).with_default(
            FaultPolicy::none()
                .with_duplicate(0.2)
                .with_reorder(0.3, SimTime::from_micros(25))
                .with_replay(0.1),
        );
        let mut sim = Simulator::new(t);
        let (out, _) =
            run_ring_allreduce_faulted(&mut sim, &cfg, blobs, SimTime::from_secs(5), plan);
        let bits: Vec<Vec<u32>> = out
            .iter()
            .map(|b| b.iter().map(|v| v.to_bits()).collect())
            .collect();
        (bits, sim.telemetry_snapshot().to_json())
    };
    for seed in chaos_seeds() {
        let (bits1, snap1) = run(seed);
        let (bits2, snap2) = run(seed);
        assert_eq!(bits1, bits2, "seed {seed:#x}: blob bits diverged");
        assert_eq!(snap1, snap2, "seed {seed:#x}: telemetry diverged");
    }
}

/// Debugging story for a chaos seed: run a congested faulted ring with the
/// flight recorder on, pick a packet the switch actually trimmed, and
/// reconstruct its full lifecycle with the trace query layer — the exact
/// workflow EXPERIMENTS.md documents for `trimgrad-trace query --follow`.
#[test]
fn trace_follow_reconstructs_a_trimmed_packets_path() {
    use trimgrad_trace::{query, TraceEvent, Tracer};
    let w = 4;
    let len = 8_000;
    let policy = QueuePolicy {
        data_capacity: 10_000,
        prio_capacity: 512_000,
        ecn_threshold: None,
        action: trimgrad::netsim::switch::FullAction::Trim { grad_depth: 1 },
    };
    let mut topo = Topology::new();
    let switch = topo.add_switch(policy);
    let hosts: Vec<NodeId> = (0..w)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let cross: Vec<NodeId> = (0..2)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let mut sim = Simulator::new(topo);
    sim.set_tracer(Tracer::enabled(1 << 18));
    for (i, &c) in cross.iter().enumerate() {
        sim.install_app(
            c,
            Box::new(trimgrad::netsim::crosstraffic::BulkSenderApp::new(
                hosts[i + 1],
                1_500_000,
                1500,
                0x9000 + i as u64,
            )),
        );
    }
    // Non-lossy faults on top of congestion: duplicates and reordering make
    // the lifecycle richer without dropping anything.
    sim.install_fault_plan(
        FaultPlan::new(0x00C0_FFEE).with_default(
            FaultPolicy::none()
                .with_duplicate(0.05)
                .with_reorder(0.1, SimTime::from_micros(25)),
        ),
    );
    let blobs: Vec<Vec<f32>> = {
        let mut rng = Xoshiro256StarStar::new(2);
        (0..w)
            .map(|_| (0..len).map(|_| rng.next_f32_range(-1.0, 1.0)).collect())
            .collect()
    };
    let cfg = RingNetConfig {
        scheme: SchemeId::RhtOneBit,
        row_len: 1024,
        base_seed: 42,
        epoch: 1,
        mtu: 1500,
        hosts,
        blob_len: len,
        flow_base: 0,
    };
    let (_, trim_frac) = run_ring_allreduce(&mut sim, &cfg, blobs, SimTime::from_secs(60));
    assert!(trim_frac > 0.0, "congestion must trim something");
    let trace = sim.tracer().snapshot();

    // Pick the first packet the fabric trimmed and follow it.
    let (flow, pseq) = trace
        .records
        .iter()
        .find_map(|r| match r.event {
            TraceEvent::PktTrimmed { flow, pseq, .. } => Some((flow, pseq)),
            _ => None,
        })
        .expect("a congested run records pkt.trimmed events");
    let path = query::follow_records(&trace, flow, pseq);
    assert!(path.len() >= 3, "lifecycle has sent/trimmed/delivered");
    assert_eq!(path[0].event.kind_name(), "pkt.sent");
    assert!(
        path.iter().any(|r| r.event.kind_name() == "pkt.trimmed"),
        "the followed packet must show its trim"
    );
    assert_eq!(
        path.last().expect("nonempty").event.kind_name(),
        "pkt.delivered",
        "trimmed packets still deliver (that is the whole point of trimming)"
    );
    // Timestamps along the path never go backwards.
    assert!(path.windows(2).all(|p| p[0].at <= p[1].at));
    // The human rendering says so too.
    let rendered = query::follow(&trace, flow, pseq);
    assert!(rendered.contains("trimmed"), "{rendered}");
    assert!(rendered.contains("delivered"), "{rendered}");
}

/// A synchronized incast plus a cross-traffic storm on a k=4 fat-tree,
/// pushed through the full fault matrix with the flight recorder armed. The
/// two generated schedules are merged into one [`FlowSchedule`] (storm flow
/// ids offset past the incast's), so the seeded workload layer, ECMP
/// fabric routing, fault injection, and tracing are all load-bearing at
/// once. Per seed: packet conservation must hold, faults must actually
/// fire, and the run must be bit-deterministic — two runs produce the same
/// FNV fingerprint of the trace's canonical binary form and the same
/// telemetry snapshot.
///
/// [`FlowSchedule`]: trimgrad::netsim::workload::FlowSchedule
#[test]
fn fat_tree_incast_storm_survives_fault_matrix_deterministically() {
    use trimgrad::netsim::workload::FlowSchedule;
    use trimgrad_trace::Tracer;

    fn fnv(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    let run = |seed: u64| {
        let (topo, hosts) = Topology::fat_tree(
            4,
            gbps(10.0),
            gbps(10.0),
            SimTime::from_micros(1),
            QueuePolicy::trim_default(),
        );
        let mut sched = FlowSchedule::incast(&hosts, 12, 30_000, 1500, seed);
        let storm = FlowSchedule::storm(
            &hosts,
            24,
            20_000,
            1500,
            SimTime::from_micros(200),
            seed ^ 0x5707_0000,
        );
        let base = sched.flows.len() as u64;
        sched.flows.extend(storm.flows.into_iter().map(|mut f| {
            f.flow = FlowId(f.flow.0 + base);
            f
        }));
        let expected = sched.total_packets();
        let mut sim = Simulator::with_seed(topo, seed);
        sim.set_tracer(Tracer::enabled(1 << 18));
        sim.install_fault_plan(FaultPlan::new(seed).with_default(full_matrix_policy()));
        sched.install(&mut sim);
        sim.run_until(SimTime::from_millis(100));
        assert!(
            sim.conservation_holds(),
            "seed {seed:#x}: packet conservation violated"
        );
        assert!(
            sim.fault_stats().total() > 0,
            "seed {seed:#x}: fault matrix never fired"
        );
        // Every emitted packet is accounted for: lost to faults, dropped or
        // trimmed at a congested port, or delivered.
        assert!(
            sim.stats().delivered_packets() + sim.stats().dropped_total() >= expected,
            "seed {seed:#x}: packets unaccounted for"
        );
        (
            fnv(&sim.tracer().snapshot().to_binary()),
            sim.telemetry_snapshot().to_json(),
        )
    };

    let mut hashes = Vec::new();
    for seed in chaos_seeds() {
        let (trace1, snap1) = run(seed);
        let (trace2, snap2) = run(seed);
        assert_eq!(trace1, trace2, "seed {seed:#x}: trace hash diverged");
        assert_eq!(snap1, snap2, "seed {seed:#x}: telemetry diverged");
        hashes.push(trace1);
    }
    let seeds = hashes.len();
    hashes.sort_unstable();
    hashes.dedup();
    assert_eq!(
        hashes.len(),
        seeds,
        "distinct seeds produced identical traces"
    );
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    for seed in chaos_seeds() {
        let (sim1, _) = trimming_run(seed);
        let (sim2, _) = trimming_run(seed);
        assert_eq!(
            sim1.telemetry_snapshot().to_json(),
            sim2.telemetry_snapshot().to_json(),
            "seed {seed:#x}: same seed produced different runs"
        );
    }
    // And distinct seeds genuinely explore different schedules.
    let (a, _) = trimming_run(0x00C0_FFEE);
    let (b, _) = trimming_run(0xDEC0_DE01);
    assert_ne!(
        a.telemetry_snapshot().to_json(),
        b.telemetry_snapshot().to_json(),
        "different seeds produced identical runs"
    );
}
