//! Integration tests for the paper's networking scenarios: incast at
//! shallow-buffer switches, transports under loss, and the leaf–spine
//! fabric with background traffic.

use trimgrad::netsim::crosstraffic::{install_incast, OnOffApp};
use trimgrad::netsim::link::LinkParams;
use trimgrad::netsim::sim::Simulator;
use trimgrad::netsim::switch::QueuePolicy;
use trimgrad::netsim::time::{gbps, SimTime};
use trimgrad::netsim::topology::Topology;
use trimgrad::netsim::transport::{
    ReliableReceiverApp, ReliableSenderApp, TransportConfig, TrimmingReceiverApp, TrimmingSenderApp,
};
use trimgrad::netsim::{FlowId, NodeId};

/// Incast FCT: trimming keeps the slowest flow close to the ideal drain
/// time; tail-drop loses packets outright.
#[test]
fn incast_fct_trimming_vs_droptail() {
    let run = |policy: QueuePolicy| {
        let mut topo = Topology::new();
        let recv = topo.add_host();
        let sw = topo.add_switch(policy);
        topo.link(recv, sw, gbps(10.0), SimTime::from_micros(1));
        let senders: Vec<NodeId> = (0..16)
            .map(|_| {
                let h = topo.add_host();
                topo.link(h, sw, gbps(10.0), SimTime::from_micros(1));
                h
            })
            .collect();
        let mut sim = Simulator::new(topo);
        install_incast(&mut sim, &senders, recv, 75_000, 1500, 0);
        sim.run_until(SimTime::from_secs(1));
        (
            sim.stats().dropped_total(),
            sim.stats().trimmed_packets(),
            sim.stats().max_fct(),
        )
    };
    let (drops_dt, trims_dt, _) = run(QueuePolicy::droptail_default());
    assert!(drops_dt > 0);
    assert_eq!(trims_dt, 0);

    let (drops_tr, trims_tr, fct) = run(QueuePolicy::trim_default());
    assert_eq!(drops_tr, 0, "trimming fabric must not lose packets");
    assert!(trims_tr > 0);
    // 16 × 75 kB = 1.2 MB over 10 Gbps ≈ 0.96 ms ideal; trimming shrinks
    // bytes so the actual drain is *faster*.
    let fct = fct.expect("all flows complete");
    assert!(
        fct < SimTime::from_millis(2),
        "incast must resolve quickly, got {fct}"
    );
}

/// Leaf–spine with oversubscribed uplinks and on/off background traffic:
/// cross-rack flows get trimmed, intra-rack flows do not, and ECMP spreads
/// load across both spines.
#[test]
fn leaf_spine_background_traffic() {
    let (mut topo, hosts) = Topology::leaf_spine(
        2,
        4,
        2,
        gbps(10.0),
        gbps(5.0), // 4×10G of hosts into 2×5G of uplinks: 4:1 oversubscribed
        SimTime::from_micros(1),
        QueuePolicy::trim_default(),
    );
    // A background on/off source inside each rack targeting the other rack.
    let bg0 = topo.add_host();
    let bg1 = topo.add_host();
    topo.link(bg0, NodeId(0), gbps(10.0), SimTime::from_micros(1));
    topo.link(bg1, NodeId(1), gbps(10.0), SimTime::from_micros(1));
    let mut sim = Simulator::new(topo);
    sim.install_app(
        bg0,
        Box::new(OnOffApp::new(
            hosts[7],
            150_000,
            1500,
            SimTime::from_micros(150),
            SimTime::from_millis(20),
            1000,
            1,
        )),
    );
    sim.install_app(
        bg1,
        Box::new(OnOffApp::new(
            hosts[0],
            150_000,
            1500,
            SimTime::from_micros(150),
            SimTime::from_millis(20),
            2000,
            2,
        )),
    );
    // Foreground cross-rack bulk flows from every host of rack 0.
    for (i, &h) in hosts[..4].iter().enumerate() {
        sim.install_app(
            h,
            Box::new(trimgrad::netsim::crosstraffic::BulkSenderApp::new(
                hosts[4 + i],
                300_000,
                1500,
                100 + i as u64,
            )),
        );
    }
    sim.run_until(SimTime::from_millis(100));
    let st = sim.stats();
    assert!(st.trimmed_packets() > 0, "oversubscription must trim");
    assert!(sim.conservation_holds());
    // All foreground flows complete despite the congestion.
    for i in 0..4 {
        assert!(
            st.flow(FlowId(100 + i)).and_then(|f| f.fct()).is_some(),
            "foreground flow {i} incomplete"
        );
    }
}

/// Transport comparison at matched loss: the trimming transport's FCT stays
/// flat while the go-back-N baseline inflates superlinearly.
#[test]
fn transport_loss_tolerance_shapes() {
    let fct_of = |reliable: bool, drop: f64| {
        let mut topo = Topology::new();
        let a = topo.add_host();
        let b = topo.add_host();
        topo.link_with(
            a,
            b,
            LinkParams::new(gbps(10.0), SimTime::from_micros(5)).with_drop_prob(drop),
        );
        let mut sim = Simulator::with_seed(topo, 77);
        if reliable {
            sim.install_app(
                a,
                Box::new(ReliableSenderApp::new(
                    b,
                    1_500_000,
                    1,
                    TransportConfig::default(),
                )),
            );
            sim.install_app(b, Box::new(ReliableReceiverApp::new()));
        } else {
            sim.install_app(
                a,
                Box::new(TrimmingSenderApp::new(
                    b,
                    1_500_000,
                    1,
                    TransportConfig::default(),
                )),
            );
            sim.install_app(
                b,
                Box::new(TrimmingReceiverApp::new(1, TransportConfig::default())),
            );
        }
        sim.run_until(SimTime::from_secs(30));
        sim.stats()
            .flow(FlowId(1))
            .and_then(|f| f.fct())
            .expect("flow completes")
            .as_secs_f64()
    };

    let rel_clean = fct_of(true, 0.0);
    let rel_lossy = fct_of(true, 0.02);
    let trim_clean = fct_of(false, 0.0);
    let trim_lossy = fct_of(false, 0.02);
    let rel_factor = rel_lossy / rel_clean;
    let trim_factor = trim_lossy / trim_clean;
    assert!(
        rel_factor > 1.8,
        "go-back-N at 2% loss must slow markedly ({rel_factor:.2}x)"
    );
    assert!(
        trim_factor < 1.5,
        "trimming transport must stay almost flat ({trim_factor:.2}x)"
    );
    assert!(rel_factor > 1.5 * trim_factor);
}
