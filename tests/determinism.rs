//! Determinism regression tests (§5.4 reproducibility): running the same
//! seeded experiment twice must produce *byte-identical* artifacts — the
//! telemetry snapshot JSON, the all-reduced gradients, and the trim
//! transcript. Any hidden nondeterminism (hash-map iteration order,
//! uninitialized state, wall-clock leakage) shows up here as a diff.

use trimgrad::collective::ring_netsim::{run_ring_allreduce, RingNetConfig};
use trimgrad::collective::TrimInjector;
use trimgrad::hadamard::prng::Xoshiro256StarStar;
use trimgrad::netsim::crosstraffic::BulkSenderApp;
use trimgrad::netsim::sim::Simulator;
use trimgrad::netsim::switch::{FullAction, QueuePolicy};
use trimgrad::netsim::time::{gbps, SimTime};
use trimgrad::netsim::topology::Topology;
use trimgrad::netsim::NodeId;
use trimgrad::quant::{scheme_for, SchemeId};
use trimgrad::transcript::RecordingInjector;
use trimgrad_telemetry::Snapshot;

fn blobs(w: usize, len: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..w)
        .map(|_| (0..len).map(|_| rng.next_f32_range(-1.0, 1.0)).collect())
        .collect()
}

/// One full congested ring all-reduce: star fabric with bursty cross-traffic
/// overflowing two downlinks, so the switch genuinely trims ring frames.
/// Returns the per-worker results and the run's telemetry snapshot.
fn congested_ring_run(base_seed: u64) -> (Vec<Vec<f32>>, Snapshot) {
    let w = 4;
    let len = 20_000;
    let policy = QueuePolicy {
        data_capacity: 10_000,
        prio_capacity: 512_000,
        ecn_threshold: None,
        action: FullAction::Trim { grad_depth: 1 },
    };
    let mut topo = Topology::new();
    let switch = topo.add_switch(policy);
    let hosts: Vec<NodeId> = (0..w)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let cross: Vec<NodeId> = (0..2)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let mut sim = Simulator::with_seed(topo, base_seed);
    for (i, &c) in cross.iter().enumerate() {
        sim.install_app(
            c,
            Box::new(BulkSenderApp::new(
                hosts[i + 1],
                4_000_000,
                1500,
                0x9000 + i as u64,
            )),
        );
    }
    let cfg = RingNetConfig {
        scheme: SchemeId::RhtOneBit,
        row_len: 1024,
        base_seed,
        epoch: 1,
        mtu: 1500,
        hosts,
        blob_len: len,
        flow_base: 0,
    };
    let b = blobs(w, len, base_seed);
    let (out, trim_frac) = run_ring_allreduce(&mut sim, &cfg, b, SimTime::from_secs(60));
    assert!(trim_frac > 0.0, "congestion must trim something");
    (out, sim.telemetry_snapshot())
}

/// Two seeded runs of the congested all-reduce agree bit-for-bit: equal
/// snapshots, byte-identical snapshot JSON, and bit-identical gradients.
#[test]
fn seeded_ring_allreduce_is_byte_reproducible() {
    let (out_a, snap_a) = congested_ring_run(42);
    let (out_b, snap_b) = congested_ring_run(42);

    assert_eq!(snap_a, snap_b, "telemetry snapshots differ between runs");
    assert_eq!(
        snap_a.to_json().into_bytes(),
        snap_b.to_json().into_bytes(),
        "snapshot JSON is not byte-identical"
    );
    assert_eq!(out_a.len(), out_b.len());
    for (wa, wb) in out_a.iter().zip(&out_b) {
        assert_eq!(wa.len(), wb.len());
        for (a, b) in wa.iter().zip(wb) {
            assert_eq!(a.to_bits(), b.to_bits(), "gradient bits differ");
        }
    }
    // The runs were genuinely lossy — this is not vacuous determinism.
    assert!(snap_a.counter("netsim.trimmed") > 0);
    // And the snapshot's own conservation identity holds.
    assert_eq!(
        snap_a.counter("netsim.sent"),
        snap_a.counter("netsim.delivered") + snap_a.counter_sum("netsim.dropped."),
    );
}

/// A different seed must actually change the run's data (guards against the
/// seed being ignored, which would make the test above pass trivially).
/// Counter-level telemetry may legitimately coincide — the traffic *shape*
/// is seed-invariant — but the reduced gradients cannot.
#[test]
fn different_seed_changes_the_result() {
    let (out_a, _) = congested_ring_run(42);
    let (out_b, _) = congested_ring_run(43);
    let bits =
        |out: &[Vec<f32>]| -> Vec<u32> { out.iter().flatten().map(|x| x.to_bits()).collect() };
    assert_ne!(
        bits(&out_a),
        bits(&out_b),
        "base_seed appears to be ignored"
    );
}

/// Two recordings of the same seeded trim process serialize to identical
/// transcript bytes.
#[test]
fn seeded_trim_transcript_is_byte_reproducible() {
    let scheme = scheme_for(SchemeId::RhtOneBit);
    let mut rng = Xoshiro256StarStar::new(11);
    let g: Vec<f32> = (0..4096).map(|_| rng.next_f32_range(-1.0, 1.0)).collect();
    let enc = scheme.encode(&g, 77);
    let record = || {
        let mut rec = RecordingInjector::new(TrimInjector::new(0.5, 123));
        let _ = rec.draw_depths(&enc, 0, 1, 2);
        rec.into_transcript().to_bytes()
    };
    let a = record();
    assert_eq!(a, record(), "transcript bytes differ between runs");
    assert!(!a.is_empty(), "a 50% trim rate must record some fates");

    // A different injector seed draws different fates.
    let mut other = RecordingInjector::new(TrimInjector::new(0.5, 124));
    let _ = other.draw_depths(&enc, 0, 1, 2);
    assert_ne!(
        a,
        other.into_transcript().to_bytes(),
        "injector seed appears to be ignored"
    );
}
