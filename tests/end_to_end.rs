//! Cross-crate integration tests: the full path from gradient blob through
//! encoding, packetization, the simulated network (including genuine
//! in-switch byte-level trimming), reassembly, decoding, and SGD.

use trimgrad::hadamard::prng::Xoshiro256StarStar;
use trimgrad::pipeline::{PipelineConfig, TrimmablePipeline};
use trimgrad::quant::error::{cosine_similarity, nmse};
use trimgrad::Scheme;

fn blob(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..n).map(|_| rng.next_f32_range(-1.0, 1.0)).collect()
}

/// Gradient → pipeline → real switch trim (byte level) → pipeline → gradient.
#[test]
fn pipeline_survives_real_switch_trimming() {
    for scheme in [
        Scheme::SignMagnitude,
        Scheme::RhtOneBit,
        Scheme::MultiLevelRht,
    ] {
        let pipe = TrimmablePipeline::new(
            PipelineConfig::builder()
                .scheme(scheme)
                .row_len(1 << 11)
                .build(),
        );
        let g = blob(6000, 1);
        let tx = pipe.encode(&g, 2, 5, 1, 2);
        let mut packets = tx.packets;
        // A congested switch trims 40% of the data packets.
        for (i, p) in packets.iter_mut().enumerate() {
            if i % 5 < 2 {
                p.trim_to_depth(1).expect("data packets trim");
            }
        }
        let dec = pipe.decode(&packets, &tx.metas, 2, 5).expect("decodable");
        assert_eq!(dec.len(), g.len());
        let e = nmse(&dec, &g);
        assert!(e < 0.6, "{scheme}: nmse {e}");
        assert!(
            cosine_similarity(&dec, &g) > 0.7,
            "{scheme}: direction must be preserved"
        );
    }
}

/// The full netsim path: a ring all-reduce whose frames *really* cross
/// switches, with the result numerically matching the in-memory collective.
#[test]
fn netsim_ring_matches_in_memory_ring_when_clean() {
    use trimgrad::collective::channel::LosslessChannel;
    use trimgrad::collective::ring::ring_all_reduce;
    use trimgrad::collective::ring_netsim::{run_ring_allreduce, RingNetConfig};
    use trimgrad::netsim::sim::Simulator;
    use trimgrad::netsim::switch::QueuePolicy;
    use trimgrad::netsim::time::{gbps, SimTime};
    use trimgrad::netsim::topology::Topology;

    let w = 4;
    let len = 4096;
    let blobs: Vec<Vec<f32>> = (0..w).map(|i| blob(len, 10 + i as u64)).collect();

    // In-memory reference.
    let mut reference = blobs.clone();
    let mut chans: Vec<LosslessChannel> = (0..w).map(|_| LosslessChannel::new()).collect();
    ring_all_reduce(&mut reference, &mut chans, 1, 0);

    // Through the simulator.
    let mut topo = Topology::new();
    let sw = topo.add_switch(QueuePolicy::trim_default());
    let hosts: Vec<_> = (0..w)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, sw, gbps(100.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let mut sim = Simulator::new(topo);
    let cfg = RingNetConfig {
        scheme: Scheme::RhtOneBit,
        row_len: 1024,
        base_seed: 3,
        epoch: 1,
        mtu: 1500,
        hosts,
        blob_len: len,
        flow_base: 0,
    };
    let (out, trim_frac) = run_ring_allreduce(&mut sim, &cfg, blobs, SimTime::from_secs(10));
    assert_eq!(trim_frac, 0.0);
    assert!(sim.conservation_holds());
    for (sim_worker, ref_worker) in out.iter().zip(&reference) {
        let e = nmse(sim_worker, ref_worker);
        assert!(e < 1e-6, "netsim ring must match in-memory ring: nmse {e}");
    }
}

/// Distributed training through the trimmable hook learns, and transcripts
/// make a trimmed exchange bit-reproducible.
#[test]
fn training_and_transcript_reproducibility() {
    use trimgrad::collective::hooks::TrimmableHook;
    use trimgrad::collective::TrimInjector;
    use trimgrad::mltrain::data::gaussian_mixture;
    use trimgrad::mltrain::parallel::{DataParallelTrainer, ParallelConfig};
    use trimgrad::quant::scheme_for;
    use trimgrad::transcript::{RecordingInjector, TrimTranscript};

    // Short training smoke: accuracy must clearly beat chance (10 classes).
    let (train, test) = gaussian_mixture(10, 16, 60, 2.0, 0.8, 5).split(0.8, 5);
    let hook = TrimmableHook::new(Scheme::RhtOneBit, 2, 0.3, 0.0, 1 << 10, 3);
    let mut t = DataParallelTrainer::new(
        &[16, 32, 10],
        train,
        test,
        Box::new(hook),
        ParallelConfig {
            workers: 2,
            batch_size: 16,
            rounds_per_epoch: 15,
            ..ParallelConfig::default()
        },
    );
    for _ in 0..12 {
        t.run_epoch();
    }
    let (top1, _) = t.evaluate();
    assert!(
        top1 > 0.5,
        "training through trimmed exchange stuck at {top1}"
    );

    // Transcript: record one trimmed exchange, replay bit-identically.
    let scheme = scheme_for(Scheme::RhtOneBit);
    let g = blob(4096, 9);
    let enc = scheme.encode(&g, 77);
    let mut rec = RecordingInjector::new(TrimInjector::new(0.5, 123));
    let depths = rec.draw_depths(&enc, 0, 1, 2);
    let original = scheme
        .decode(&enc.view_with_depths(&depths), &enc.meta, 77)
        .expect("valid");
    let bytes = rec.into_transcript().to_bytes();
    let replayed_depths = TrimTranscript::from_bytes(&bytes)
        .expect("well-formed")
        .replay_depths(&enc, 0, 1, 2, 1500 - 20 - 8 - 28);
    let replayed = scheme
        .decode(&enc.view_with_depths(&replayed_depths), &enc.meta, 77)
        .expect("valid");
    assert_eq!(original, replayed);
}

/// Every scheme round-trips bit-exactly (or to rotation rounding) through
/// the COMPLETE stack: encode → packets → frames → parse → reassemble →
/// decode, with zero trimming.
#[test]
fn lossless_full_stack_all_schemes() {
    for scheme in trimgrad::quant::SchemeId::ALL {
        let pipe = TrimmablePipeline::new(
            PipelineConfig::builder()
                .scheme(scheme)
                .row_len(512)
                .build(),
        );
        let g = blob(1500, 2);
        let tx = pipe.encode(&g, 0, 0, 3, 4);
        // Parse every frame as raw bytes first (checksums must verify).
        for p in &tx.packets {
            p.parse().expect("valid frame");
        }
        let dec = pipe
            .decode(&tx.packets, &tx.metas, 0, 0)
            .expect("decodable");
        for (d, v) in dec.iter().zip(&g) {
            assert!((d - v).abs() < 1e-4, "{scheme}: {d} vs {v}");
        }
    }
}

/// The adaptive selector flips between schemes as observed congestion moves,
/// and the sparsifier composes with the pipeline.
#[test]
fn adaptive_and_sparsify_compose() {
    use trimgrad::adaptive::AdaptiveSelector;
    use trimgrad::sparsify::TopKSparsifier;

    let mut sel = AdaptiveSelector::default();
    for _ in 0..5 {
        sel.observe(0.4);
    }
    let scheme = sel.scheme();
    assert_eq!(scheme, Scheme::RhtOneBit);

    let mut sparsifier = TopKSparsifier::new(0.25, 2048);
    let g = blob(2048, 4);
    let sparse = sparsifier.sparsify(&g);
    let kept = sparse.iter().filter(|&&v| v != 0.0).count();
    assert_eq!(kept, 512);

    let pipe = TrimmablePipeline::new(
        PipelineConfig::builder()
            .scheme(scheme)
            .row_len(1 << 10)
            .build(),
    );
    let tx = pipe.encode(&sparse, 0, 0, 1, 2);
    let mut packets = tx.packets;
    for p in &mut packets {
        p.trim_to_depth(1).expect("trimmable");
    }
    let dec = pipe.decode(&packets, &tx.metas, 0, 0).expect("decodable");
    // Sparsified + fully trimmed: still directionally informative.
    assert!(cosine_similarity(&dec, &sparse) > 0.5);
}
