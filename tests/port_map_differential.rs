//! Differential harness for the dense port table: replays the k=4 fat-tree
//! incast+storm chaos leg on both port-map implementations — the dense
//! CSR-indexed [`DensePortTable`] the simulator now runs on, and the
//! historical [`BTreePortMap`] retained as an oracle (the same pattern as
//! `HeapEventQueue` for the calendar queue) — and asserts the two produce
//! byte-identical traces, telemetry, and conservation outcomes per seed.
//!
//! Because the trace hash covers every per-packet event (sends, trims,
//! drops, fault injections, deliveries) and the telemetry JSON covers every
//! counter and queue-depth maximum, equality here means the dense rebuild
//! changed *nothing* observable: PortId assignment order, parallel-link
//! parameter resolution, lazy-port materialization in exports, and the
//! incremental conservation counters all agree with the map-walk oracle.
//!
//! `CHAOS_SEED=<seed>` narrows the sweep to one seed for replaying a
//! recorded divergence.

use trimgrad::netsim::fault::{FaultPlan, FaultPolicy};
use trimgrad::netsim::ports::{BTreePortMap, DensePortTable, PortMap};
use trimgrad::netsim::sim::Simulator;
use trimgrad::netsim::switch::QueuePolicy;
use trimgrad::netsim::time::{gbps, SimTime};
use trimgrad::netsim::topology::Topology;
use trimgrad::netsim::workload::FlowSchedule;
use trimgrad::netsim::FlowId;
use trimgrad_trace::Tracer;

fn fnv(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn chaos_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let s = s.trim();
        let parsed = match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => s.parse(),
        };
        return vec![parsed.expect("CHAOS_SEED must be a u64")];
    }
    vec![0x00C0_FFEE, 0xDEC0_DE01, 0x0072_13AB, 0xFA57_F00D]
}

fn full_matrix_policy() -> FaultPolicy {
    FaultPolicy::none()
        .with_loss_burst(0.02, 1, 3)
        .with_reorder(0.08, SimTime::from_micros(40))
        .with_duplicate(0.05)
        .with_corrupt(0.05)
        .with_truncate(0.05)
        .with_replay(0.03)
}

/// Everything the chaos leg observes about a run, collected for one
/// port-map implementation.
#[derive(Debug, PartialEq, Eq)]
struct Fingerprint {
    trace_fnv: u64,
    telemetry_json: String,
    conservation: bool,
    events_fired: u64,
    delivered: u64,
    dropped: u64,
}

fn run_leg<P: PortMap>(seed: u64) -> Fingerprint {
    let (topo, hosts) = Topology::fat_tree(
        4,
        gbps(10.0),
        gbps(10.0),
        SimTime::from_micros(1),
        QueuePolicy::trim_default(),
    );
    let mut sched = FlowSchedule::incast(&hosts, 12, 30_000, 1500, seed);
    let storm = FlowSchedule::storm(
        &hosts,
        24,
        20_000,
        1500,
        SimTime::from_micros(200),
        seed ^ 0x5707_0000,
    );
    let base = sched.flows.len() as u64;
    sched.flows.extend(storm.flows.into_iter().map(|mut f| {
        f.flow = FlowId(f.flow.0 + base);
        f
    }));
    let mut sim = Simulator::<P>::with_seed_in(topo, seed);
    sim.set_tracer(Tracer::enabled(1 << 18));
    sim.install_fault_plan(FaultPlan::new(seed).with_default(full_matrix_policy()));
    sched.install(&mut sim);
    sim.run_until(SimTime::from_millis(100));
    Fingerprint {
        trace_fnv: fnv(&sim.tracer().snapshot().to_binary()),
        telemetry_json: sim.telemetry_snapshot().to_json(),
        conservation: sim.conservation_holds(),
        events_fired: sim.events_fired(),
        delivered: sim.stats().delivered_packets(),
        dropped: sim.stats().dropped_total(),
    }
}

/// The k=4 fat-tree incast+storm chaos leg, dense vs BTreeMap oracle: equal
/// trace hashes, telemetry snapshots, and conservation verdicts per seed.
#[test]
fn dense_port_table_matches_btree_oracle_on_chaos_leg() {
    for seed in chaos_seeds() {
        let dense = run_leg::<DensePortTable>(seed);
        let oracle = run_leg::<BTreePortMap>(seed);
        assert!(
            dense.conservation,
            "seed {seed:#x}: dense plane violated conservation"
        );
        assert_eq!(
            dense, oracle,
            "seed {seed:#x}: dense port table diverged from BTreeMap oracle"
        );
    }
}

/// Run-twice determinism on the dense plane itself (the acceptance
/// criterion's trace-hash equality), so a divergence in the harness above
/// can be attributed to the implementations rather than nondeterminism.
#[test]
fn dense_port_table_is_run_twice_deterministic() {
    for seed in chaos_seeds() {
        let a = run_leg::<DensePortTable>(seed);
        let b = run_leg::<DensePortTable>(seed);
        assert_eq!(a, b, "seed {seed:#x}: dense plane nondeterministic");
    }
}
