//! Flight-recorder determinism: the acceptance bar for PR 5's tracing is
//! that a trace is part of the reproducible transcript — two runs of the
//! same seed must serialize to byte-identical files, at every worker-pool
//! width. CI runs this file under both `TRIMGRAD_THREADS=1` and
//! `TRIMGRAD_THREADS=4`; all trace emission happens in serial sections
//! (the event loop and the post-fan-out merge loops), so the pool width
//! must never leak into the record stream.

use trimgrad::collective::ring_netsim::{run_ring_allreduce, RingNetConfig};
use trimgrad::hadamard::prng::Xoshiro256StarStar;
use trimgrad::netsim::crosstraffic::BulkSenderApp;
use trimgrad::netsim::sim::Simulator;
use trimgrad::netsim::switch::{FullAction, QueuePolicy};
use trimgrad::netsim::time::{gbps, SimTime};
use trimgrad::netsim::topology::Topology;
use trimgrad::netsim::NodeId;
use trimgrad::quant::SchemeId;
use trimgrad_trace::{Trace, Tracer};

/// The canonical congested ring: the same shape the fig3/queue studies and
/// the CI `trace_smoke` binary run, scaled down to keep the suite fast.
fn canonical_trace() -> Trace {
    let w = 4;
    let len = 8_000;
    let policy = QueuePolicy {
        data_capacity: 10_000,
        prio_capacity: 512_000,
        ecn_threshold: None,
        action: FullAction::Trim { grad_depth: 1 },
    };
    let mut topo = Topology::new();
    let switch = topo.add_switch(policy);
    let hosts: Vec<NodeId> = (0..w)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let cross: Vec<NodeId> = (0..2)
        .map(|_| {
            let h = topo.add_host();
            topo.link(h, switch, gbps(10.0), SimTime::from_micros(1));
            h
        })
        .collect();
    let mut sim = Simulator::new(topo);
    sim.set_tracer(Tracer::enabled(1 << 18));
    for (i, &c) in cross.iter().enumerate() {
        sim.install_app(
            c,
            Box::new(BulkSenderApp::new(
                hosts[i + 1],
                1_500_000,
                1500,
                0x9000 + i as u64,
            )),
        );
    }
    let blobs: Vec<Vec<f32>> = {
        let mut rng = Xoshiro256StarStar::new(2);
        (0..w)
            .map(|_| (0..len).map(|_| rng.next_f32_range(-1.0, 1.0)).collect())
            .collect()
    };
    let cfg = RingNetConfig {
        scheme: SchemeId::RhtOneBit,
        row_len: 1024,
        base_seed: 42,
        epoch: 1,
        mtu: 1500,
        hosts,
        blob_len: len,
        flow_base: 0,
    };
    let (_, trim_frac) = run_ring_allreduce(&mut sim, &cfg, blobs, SimTime::from_secs(60));
    assert!(trim_frac > 0.0, "the canonical run must congest and trim");
    assert!(sim.conservation_holds());
    sim.tracer().snapshot()
}

/// FNV-1a 64 — tiny, dependency-free, and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Two runs of the same seed serialize byte-identically — binary and JSONL.
#[test]
fn same_seed_produces_byte_identical_traces() {
    let a = canonical_trace();
    let b = canonical_trace();
    let bin_a = a.to_binary();
    let bin_b = b.to_binary();
    assert!(!a.records.is_empty());
    assert_eq!(bin_a, bin_b, "binary trace diverged between identical runs");
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "JSONL trace diverged between identical runs"
    );
    // And the binary form round-trips losslessly.
    let back = Trace::from_binary(&bin_a).expect("own serialization parses");
    assert_eq!(back.to_binary(), bin_a);
}

/// Golden-trace regression: the canonical run's binary trace hashes to a
/// pinned constant. This is the strongest tripwire in the suite — ANY change
/// to packet scheduling, trim decisions, event taxonomy, or serialization
/// moves it. If you changed one of those on purpose, rerun with
/// `UPDATE_GOLDEN=1 cargo test -q --test trace_determinism -- --nocapture`
/// and paste the printed hash here; the value must be identical at
/// `TRIMGRAD_THREADS=1` and `=4` before it lands.
#[test]
fn canonical_trace_matches_golden_hash() {
    const GOLDEN_FNV1A: u64 = 0x6d7d_0162_c016_275a;
    let h = fnv1a(&canonical_trace().to_binary());
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        println!("golden trace hash: {h:#018x}");
        return;
    }
    assert_eq!(
        h, GOLDEN_FNV1A,
        "canonical trace hash {h:#018x} != pinned {GOLDEN_FNV1A:#018x}; \
         the simulation schedule or trace format changed"
    );
}
